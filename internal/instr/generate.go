// Package instr is the pminstr auto-instrumentation generator: given a Go
// package written against the plain pmplain dialect (internal/pmplain), it
// emits an instrumented shadow package in which every persistent-memory
// load, store, flush, fence and annotation is rewritten into the
// corresponding rt.Thread hook call with taint labels threaded through —
// the tool-assisted analogue of the paper's compile-time instrumentation
// pass (DESIGN.md §15).
//
// Two properties are load-bearing:
//
//   - Shared vocabulary: accesses are classified through internal/lint's
//     exported hook tables (lint.ThreadHookKind), the same tables pmvet's
//     analyzers check, so generated output is checkable by pmvet and the
//     two tools cannot drift apart. Generated code is required to produce
//     ZERO pmvet findings; CI pins this.
//
//   - Line-number preservation: every rewrite is a byte-range splice that
//     keeps the newline count of the region it replaces, so each PM access
//     in the shadow package sits on the same line as in the plain source.
//     Site IDs (and therefore bug fingerprints) are file:line with base
//     filenames; output files carry the "pminstr_" prefix, which the fuzz
//     layer strips when comparing fingerprints across the hand- and
//     auto-instrumented variants of a target.
package instr

import (
	"bytes"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/pmrace-go/pmrace/internal/lint"
)

// ShadowFilePrefix is prepended to every generated file name so shadow
// sites are distinguishable from hand-instrumented ones. internal/fuzz's
// fingerprint normalizer strips exactly this prefix; the two constants are
// pinned equal by a test.
const ShadowFilePrefix = "pminstr_"

// pmplainSuffix identifies the plain dialect package by import-path suffix,
// matching the suffix convention of internal/lint's analyzers.
const pmplainSuffix = "internal/pmplain"

// Options configures one generation run.
type Options struct {
	// PkgName is the package name of the generated shadow package
	// (required; it must differ from the source package name so both can
	// live in the same module).
	PkgName string
	// FilePrefix overrides ShadowFilePrefix for generated file names.
	FilePrefix string
}

// File is one generated shadow source file.
type File struct {
	Name string // base name, e.g. "pminstr_pclht.go"
	Src  []byte
}

// Generate instruments every file of pkg, returning the shadow files in the
// order of pkg.Files. The input package must import internal/pmplain; all
// rewrite errors are joined and reported together.
func Generate(pkg *lint.Package, opts Options) ([]File, error) {
	if opts.PkgName == "" {
		return nil, errors.New("instr: Options.PkgName is required")
	}
	if opts.FilePrefix == "" {
		opts.FilePrefix = ShadowFilePrefix
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("instr: package %s has no files", pkg.PkgPath)
	}
	pmplainPath := findPmplainImport(pkg)
	if pmplainPath == "" {
		return nil, fmt.Errorf("instr: package %s does not import %s", pkg.PkgPath, pmplainSuffix)
	}
	internalPrefix := strings.TrimSuffix(pmplainPath, "pmplain")

	srcs := map[*ast.File][]byte{}
	names := map[*ast.File]string{}
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, fmt.Errorf("instr: %w", err)
		}
		srcs[f], names[f] = src, filepath.Base(filename)
	}

	aug := computeAugmented(pkg, internalPrefix, srcs)

	var files []File
	var errs []error
	for _, f := range pkg.Files {
		fg := newFileGen(pkg, f, srcs[f], names[f], opts, internalPrefix, aug)
		out, err := fg.run()
		errs = append(errs, fg.errs...)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if len(fg.errs) == 0 {
			files = append(files, File{Name: opts.FilePrefix + names[f], Src: out})
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return files, nil
}

func findPmplainImport(pkg *lint.Package) string {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil && strings.HasSuffix(path, pmplainSuffix) {
				return path
			}
		}
	}
	return ""
}

// computeAugmented runs the augmentation fixed point: an unexported
// function whose returned values derive from load labels gains an appended
// taint.Label result, which can in turn make its callers' returns labeled.
// Exported functions are never augmented — they are the package's public
// (often interface-constrained) surface, and hand-instrumented targets
// follow the same convention.
func computeAugmented(pkg *lint.Package, internalPrefix string, srcs map[*ast.File][]byte) map[types.Object]bool {
	aug := map[types.Object]bool{}
	for range pkg.Files {
		changed := false
		for _, f := range pkg.Files {
			fg := newFileGen(pkg, f, srcs[f], "", Options{PkgName: "probe"}, internalPrefix, aug)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Type.Results == nil || fd.Name.IsExported() {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil || aug[obj] {
					continue
				}
				probe := newFnGen(fg, fd, false, false)
				probe.walk()
				if probe.returnLabeled {
					aug[obj] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return aug
}

// fileGen accumulates the edits for one source file.
type fileGen struct {
	pkg            *lint.Package
	file           *ast.File
	src            []byte
	name           string
	opts           Options
	internalPrefix string
	aug            map[types.Object]bool

	edits []*edit
	needs map[string]bool // import paths the rewritten file requires
	errs  []error
}

func newFileGen(pkg *lint.Package, file *ast.File, src []byte, name string, opts Options, internalPrefix string, aug map[types.Object]bool) *fileGen {
	return &fileGen{
		pkg: pkg, file: file, src: src, name: name, opts: opts,
		internalPrefix: internalPrefix, aug: aug,
		needs: map[string]bool{},
	}
}

func (fg *fileGen) off(pos token.Pos) int { return fg.pkg.Fset.Position(pos).Offset }

func (fg *fileGen) addEdit(e *edit) { fg.edits = append(fg.edits, e) }

func (fg *fileGen) need(path string) { fg.needs[path] = true }

func (fg *fileGen) errf(pos token.Pos, format string, args ...any) {
	fg.errs = append(fg.errs, fmt.Errorf("%s: %s", fg.pkg.Fset.Position(pos), fmt.Sprintf(format, args...)))
}

func (fg *fileGen) run() ([]byte, error) {
	fg.packageEdit()
	fg.selectorPass()
	for _, decl := range fg.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		augmented := false
		if obj := fg.pkg.Info.Defs[fd.Name]; obj != nil {
			augmented = fg.aug[obj]
		}
		g := newFnGen(fg, fd, augmented, true)
		g.walk()
	}
	fg.markerEdit()
	fg.importsEdit()
	if len(fg.errs) > 0 {
		return nil, nil
	}
	out, err := applyEdits(fg.src, fg.edits)
	if err != nil {
		return nil, err
	}
	return out, fg.verify(out)
}

func (fg *fileGen) packageEdit() {
	lo, hi := fg.off(fg.file.Name.Pos()), fg.off(fg.file.Name.End())
	fg.addEdit(&edit{lo: lo, hi: hi, parts: []any{fg.opts.PkgName}, what: "package clause"})
}

// markerEdit places the standard generated-code marker. When line 1 is a
// comment it is replaced in place (keeping every following line number);
// otherwise the marker is appended at end of file, which also shifts no
// existing line.
func (fg *fileGen) markerEdit() {
	marker := fmt.Sprintf("// Code generated by pminstr from %s/%s; DO NOT EDIT.", fg.pkg.PkgPath, fg.name)
	nl := bytes.IndexByte(fg.src, '\n')
	if nl < 0 {
		nl = len(fg.src)
	}
	if bytes.HasPrefix(bytes.TrimSpace(fg.src[:nl]), []byte("//")) {
		fg.addEdit(&edit{lo: 0, hi: nl, parts: []any{marker}, what: "generated marker"})
		return
	}
	tail := marker + "\n"
	if len(fg.src) > 0 && fg.src[len(fg.src)-1] != '\n' {
		tail = "\n" + tail
	}
	fg.addEdit(&edit{lo: len(fg.src), hi: len(fg.src), parts: []any{tail}, what: "generated marker", freeform: true})
}

// selectorPass renames pmplain type and constructor references to their
// instrumented equivalents: Mem -> rt.Thread, ObjPool -> pmdk.ObjPool,
// Create/Open -> pmdk.Create/Open. Any other qualified pmplain reference is
// an error.
func (fg *fileGen) selectorPass() {
	ast.Inspect(fg.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := fg.pkg.Info.Uses[id].(*types.PkgName)
		if !ok || !strings.HasSuffix(pn.Imported().Path(), pmplainSuffix) {
			return true
		}
		var repl, imp string
		switch sel.Sel.Name {
		case "Mem":
			repl, imp = "rt.Thread", fg.internalPrefix+"rt"
		case "ObjPool":
			repl, imp = "pmdk.ObjPool", fg.internalPrefix+"pmdk"
		case "Create":
			repl, imp = "pmdk.Create", fg.internalPrefix+"pmdk"
		case "Open":
			repl, imp = "pmdk.Open", fg.internalPrefix+"pmdk"
		default:
			fg.errf(sel.Pos(), "pmplain.%s has no instrumented equivalent", sel.Sel.Name)
			return true
		}
		fg.need(imp)
		fg.addEdit(&edit{lo: fg.off(sel.Pos()), hi: fg.off(sel.End()), parts: []any{repl}, what: "pmplain." + sel.Sel.Name})
		return true
	})
}

// importsEdit rewrites the import block in place: the pmplain import is
// dropped, newly required instrumentation imports are added, and the block
// is re-laid-out (stdlib group, blank line, module group) padded with
// comment lines so it spans exactly the same source lines as the original.
func (fg *fileGen) importsEdit() {
	var decl *ast.GenDecl
	for _, d := range fg.file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if decl != nil {
			fg.errf(gd.Pos(), "multiple import declarations are not supported")
			return
		}
		decl = gd
	}
	if decl == nil {
		if len(fg.needs) > 0 {
			fg.errf(fg.file.Package, "file needs instrumentation imports but has no import block")
		}
		return
	}
	if !decl.Lparen.IsValid() {
		fg.errf(decl.Pos(), "only parenthesized import blocks are supported")
		return
	}

	have := map[string]bool{}
	var paths []string
	for _, spec := range decl.Specs {
		is := spec.(*ast.ImportSpec)
		if is.Name != nil {
			fg.errf(is.Pos(), "named imports are not supported")
			return
		}
		path, err := strconv.Unquote(is.Path.Value)
		if err != nil {
			fg.errf(is.Pos(), "bad import path")
			return
		}
		if strings.HasSuffix(path, pmplainSuffix) {
			continue // replaced by instrumentation imports
		}
		if !have[path] {
			have[path] = true
			paths = append(paths, path)
		}
	}
	for path := range fg.needs {
		if !have[path] {
			have[path] = true
			paths = append(paths, path)
		}
	}

	var std, mod []string
	for _, p := range paths {
		if strings.Contains(strings.SplitN(p, "/", 2)[0], ".") {
			mod = append(mod, p)
		} else {
			std = append(std, p)
		}
	}
	sort.Strings(std)
	sort.Strings(mod)

	var lines []string
	for _, p := range std {
		lines = append(lines, "\t"+strconv.Quote(p))
	}
	if len(std) > 0 && len(mod) > 0 {
		lines = append(lines, "")
	}
	modStart := len(lines)
	for _, p := range mod {
		lines = append(lines, "\t"+strconv.Quote(p))
	}

	// Region: from the start of the first line after `import (` to the
	// start of the line holding `)`.
	lo := fg.off(decl.Lparen) + 1
	for lo < len(fg.src) && fg.src[lo-1] != '\n' {
		lo++
	}
	hi := fg.off(decl.Rparen)
	for hi > lo && fg.src[hi-1] != '\n' {
		hi--
	}
	want := bytes.Count(fg.src[lo:hi], []byte("\n"))

	// Fit the block into exactly the original number of lines: pad with
	// comment lines, or fold module imports together with explicit
	// semicolons (legal inside a parenthesized import list).
	for len(lines) < want {
		lines = append(lines, "\t//")
	}
	for len(lines) > want && len(lines) > modStart+1 {
		last := len(lines) - 1
		lines[last-1] = lines[last-1] + "; " + strings.TrimPrefix(lines[last], "\t")
		lines = lines[:last]
	}
	if len(lines) != want {
		fg.errf(decl.Pos(), "cannot fit %d import lines into the original %d-line block", len(lines), want)
		return
	}
	fg.addEdit(&edit{lo: lo, hi: hi, parts: []any{strings.Join(lines, "\n") + "\n"}, what: "import block"})
}

// verify re-parses the output, checking syntax, the package clause, and
// that no existing line moved.
func (fg *fileGen) verify(out []byte) error {
	fset := token.NewFileSet()
	parsed, err := parser.ParseFile(fset, fg.opts.FilePrefix+fg.name, out, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("instr: generated %s does not parse: %w", fg.name, err)
	}
	if parsed.Name.Name != fg.opts.PkgName {
		return fmt.Errorf("instr: generated %s has package %s, want %s", fg.name, parsed.Name.Name, fg.opts.PkgName)
	}
	origLines := bytes.Count(fg.src, []byte("\n"))
	newLines := bytes.Count(out, []byte("\n"))
	if newLines != origLines && newLines != origLines+1 { // +1: marker appended at EOF
		return fmt.Errorf("instr: generated %s has %d lines, source has %d; line numbers must be preserved", fg.name, newLines, origLines)
	}
	return nil
}
