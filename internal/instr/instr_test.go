package instr_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmrace-go/pmrace/internal/instr"
	"github.com/pmrace-go/pmrace/internal/lint"
)

// sharedLoader is reused across tests so dependency packages (rt, pmem,
// taint, ...) are type-checked from source once, not once per test.
var sharedLoader = lint.NewLoader()

const modulePath = "github.com/pmrace-go/pmrace"

// loadRel loads the package at the repo-relative path rel (the test runs
// with internal/instr as its working directory).
func loadRel(t *testing.T, rel string) *lint.Package {
	t.Helper()
	dir := filepath.Join("..", "..", filepath.FromSlash(rel))
	pkg, err := sharedLoader.LoadDir(dir, modulePath+"/"+rel)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	return pkg
}

// TestGenerateReproducesCheckedInShadow is the golden test: running the
// generator over internal/targets/pclhtplain must reproduce the checked-in
// internal/targets/pclhtgen shadow byte for byte. If this fails after an
// intentional generator or plain-source change, regenerate with
//
//	go run ./cmd/pminstr -src internal/targets/pclhtplain -out internal/targets/pclhtgen -pkg pclhtgen
func TestGenerateReproducesCheckedInShadow(t *testing.T) {
	pkg := loadRel(t, "internal/targets/pclhtplain")
	files, err := instr.Generate(pkg, instr.Options{PkgName: "pclhtgen"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(files) != 1 {
		t.Fatalf("generated %d files, want 1", len(files))
	}
	f := files[0]
	if f.Name != "pminstr_pclht.go" {
		t.Fatalf("generated file name %q, want %q", f.Name, "pminstr_pclht.go")
	}
	want, err := os.ReadFile(filepath.Join("..", "targets", "pclhtgen", f.Name))
	if err != nil {
		t.Fatalf("reading checked-in shadow: %v", err)
	}
	if !bytes.Equal(f.Src, want) {
		t.Errorf("generated %s drifts from the checked-in shadow; regenerate internal/targets/pclhtgen with cmd/pminstr", f.Name)
	}
}

// TestGeneratePreservesHookLines checks the generator's load-bearing layout
// property: every PM hook call sits on the same line in the shadow as in the
// plain source, so site IDs (base file + line) agree modulo the file prefix.
func TestGeneratePreservesHookLines(t *testing.T) {
	plain, err := os.ReadFile(filepath.Join("..", "targets", "pclhtplain", "pclht.go"))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := os.ReadFile(filepath.Join("..", "targets", "pclhtgen", "pminstr_pclht.go"))
	if err != nil {
		t.Fatal(err)
	}
	pl := strings.Split(string(plain), "\n")
	gl := strings.Split(string(gen), "\n")
	if len(pl) != len(gl) {
		t.Fatalf("line counts differ: plain %d, generated %d", len(pl), len(gl))
	}
	hooks := []string{
		"t.Load64(", "t.LoadBytes(", "t.Store64(", "t.StoreBytes(",
		"t.NTStore64(", "t.NTStoreBytes(", "t.CAS64(",
		"t.Flush(", "t.Persist(", "t.Fence(",
		"t.SpinLock(", "t.SpinUnlock(",
	}
	for i := range pl {
		for _, h := range hooks {
			if strings.Contains(pl[i], h) != strings.Contains(gl[i], h) {
				t.Errorf("line %d: hook %s presence differs\n  plain: %s\n  gen:   %s", i+1, h, pl[i], gl[i])
			}
		}
		if strings.Contains(pl[i], "t.SyncVarHint(") != strings.Contains(gl[i], "AnnotateSyncVar(") {
			t.Errorf("line %d: SyncVarHint not rewritten in place\n  plain: %s\n  gen:   %s", i+1, pl[i], gl[i])
		}
	}
}

// TestGeneratedShadowIsPmvetClean pins the ISSUE's correctness oracle in the
// unit suite: the checked-in generated package must produce zero findings
// from every pmvet analyzer.
func TestGeneratedShadowIsPmvetClean(t *testing.T) {
	pkg := loadRel(t, "internal/targets/pclhtgen")
	findings, err := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("pmvet finding in generated shadow: %s %s:%d %s", f.Analyzer, f.File, f.Line, f.Message)
	}
}

// TestGenerateAugmentsInternalHelpers spot-checks the augmentation fixed
// point on the checked-in shadow: label-returning unexported helpers gain an
// appended taint.Label result, while error-returning ones keep their
// signature untouched.
func TestGenerateAugmentsInternalHelpers(t *testing.T) {
	gen, err := os.ReadFile(filepath.Join("..", "targets", "pclhtgen", "pminstr_pclht.go"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(gen)
	for _, want := range []string{
		// table's single result derives from a load, so it is augmented and
		// returns the load's label directly (pmem.Addr aliases uint64).
		"func (h *HT) table(t *rt.Thread) (pmem.Addr, taint.Label) {",
		// resize returns only an error: error results never count toward the
		// augmentation decision, so the signature survives unchanged.
		"func (h *HT) resize(t *rt.Thread) error {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated shadow missing %q", want)
		}
	}
	for _, stale := range []string{"pmplain.", "internal/pmplain"} {
		if strings.Contains(src, stale) {
			t.Errorf("generated shadow still references %q", stale)
		}
	}
}

// TestGenerateRejectsUnsupportedPatterns exercises the v1 restrictions:
// constructs outside the supported dialect are hard errors, never silent
// mis-instrumentation.
func TestGenerateRejectsUnsupportedPatterns(t *testing.T) {
	pkg := loadRel(t, "internal/instr/testdata/src/badplain")
	_, err := instr.Generate(pkg, instr.Options{PkgName: "badgen"})
	if err == nil {
		t.Fatal("Generate accepted a package full of unsupported constructs")
	}
	msg := err.Error()
	for _, want := range []string{
		"must be the entire right-hand side of a := binding",       // Nested
		"method Pool has no rt.Thread equivalent",                  // Unsupported
		"must be bound with := so its taint label can be threaded", // PlainAssign
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not mention %q:\n%s", want, msg)
		}
	}
}

// TestGenerateRequiresPackageName pins the minimal-options contract.
func TestGenerateRequiresPackageName(t *testing.T) {
	pkg := loadRel(t, "internal/targets/pclhtplain")
	if _, err := instr.Generate(pkg, instr.Options{}); err == nil {
		t.Fatal("Generate accepted empty Options.PkgName")
	}
}
