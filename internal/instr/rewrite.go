package instr

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"github.com/pmrace-go/pmrace/internal/lint"
)

// callClass classifies one call expression in plain-dialect source.
type callClass int

const (
	ccNone      callClass = iota // not a pmplain construct; no rewrite
	ccHook                       // pmplain.Mem hook sharing rt.Thread's name
	ccSyncHint                   // pmplain.Mem.SyncVarHint -> AnnotateSyncVar
	ccBranch                     // pmplain.Mem.Branch (identical on rt.Thread)
	ccPoolRoot                   // pmplain.ObjPool.Root (gains a label result)
	ccPoolOther                  // pmplain.ObjPool.{Alloc,SetRoot,HeapUsed}
	ccAugCall                    // call to an augmented in-package function
	ccBad                        // pmplain construct with no rt equivalent
)

type callInfo struct {
	class   callClass
	kind    lint.HookKind
	sel     *ast.SelectorExpr
	results int    // original result count of a label-producing call
	badMsg  string // for ccBad
}

// labelProducing reports whether the call gains an appended taint.Label
// result under instrumentation.
func (ci callInfo) labelProducing() bool {
	switch ci.class {
	case ccPoolRoot, ccAugCall:
		return true
	case ccHook:
		return ci.kind == lint.HookLoad || ci.kind == lint.HookCAS
	}
	return false
}

func (fg *fileGen) classifyCall(call *ast.CallExpr) callInfo {
	info := fg.pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		pkgPath, typeName, method := lint.MethodRecv(info, fun)
		if strings.HasSuffix(pkgPath, pmplainSuffix) {
			switch typeName {
			case "Mem":
				// The hook vocabulary is classified through the same
				// exported table pmvet's analyzers use, so generator and
				// linter can never disagree about what is a PM operation.
				if k := lint.ThreadHookKind(method); k != lint.HookNone {
					ci := callInfo{class: ccHook, kind: k, sel: fun}
					switch k {
					case lint.HookLoad:
						ci.results = 1
					case lint.HookCAS:
						ci.results = 2
					}
					return ci
				}
				switch method {
				case "SyncVarHint":
					return callInfo{class: ccSyncHint, sel: fun}
				case "Branch":
					return callInfo{class: ccBranch, sel: fun}
				}
				return callInfo{class: ccBad, badMsg: fmt.Sprintf("pmplain.Mem method %s has no rt.Thread equivalent", method)}
			case "ObjPool":
				switch method {
				case "Root":
					return callInfo{class: ccPoolRoot, sel: fun, results: 1}
				case "Alloc", "SetRoot", "HeapUsed":
					return callInfo{class: ccPoolOther, sel: fun}
				}
				return callInfo{class: ccBad, badMsg: fmt.Sprintf("pmplain.ObjPool method %s has no pmdk.ObjPool equivalent", method)}
			}
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && fg.aug[obj] {
			sig := obj.Type().(*types.Signature)
			return callInfo{class: ccAugCall, sel: fun, results: sig.Results().Len()}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok && fg.aug[obj] {
			sig := obj.Type().(*types.Signature)
			return callInfo{class: ccAugCall, results: sig.Results().Len()}
		}
	}
	return callInfo{class: ccNone}
}

// fnGen runs the per-function label dataflow: virtual labels are created at
// label-producing calls, propagated through assignments (with the same
// conservative tuple-call rule pmvet's taint-gap analyzer applies), and
// consumed at stores and augmented returns. In probe mode (final=false) it
// only computes returnLabeled, for the augmentation fixed point.
type fnGen struct {
	fg        *fileGen
	fn        *ast.FuncDecl
	augmented bool
	final     bool

	env           map[types.Object]labset
	vlabs         []*vlab
	handled       map[ast.Node]bool
	memParam      string
	origResults   int
	returnLabeled bool
}

func newFnGen(fg *fileGen, fn *ast.FuncDecl, augmented, final bool) *fnGen {
	return &fnGen{
		fg:        fg,
		fn:        fn,
		augmented: augmented,
		final:     final,
		env:       map[types.Object]labset{},
		handled:   map[ast.Node]bool{},
	}
}

func (f *fnGen) walk() {
	f.findMemParam()
	if obj, ok := f.fg.pkg.Info.Defs[f.fn.Name].(*types.Func); ok {
		f.origResults = obj.Type().(*types.Signature).Results().Len()
	}
	if f.augmented && f.final {
		f.sigEdit()
	}
	if f.fn.Body != nil {
		f.stmt(f.fn.Body)
	}
	if f.final {
		f.validate()
		f.nameLabels()
	}
}

func (f *fnGen) errf(pos token.Pos, format string, args ...any) {
	if f.final {
		f.fg.errf(pos, format, args...)
	}
}

func (f *fnGen) findMemParam() {
	if f.fn.Type.Params == nil {
		return
	}
	for _, field := range f.fn.Type.Params.List {
		for _, name := range field.Names {
			obj := f.fg.pkg.Info.Defs[name]
			if obj != nil && isPmplainType(obj.Type(), "Mem") {
				f.memParam = name.Name
				return
			}
		}
	}
}

func isPmplainType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), pmplainSuffix)
}

// sigEdit appends taint.Label to the function's result list in place.
func (f *fnGen) sigEdit() {
	res := f.fn.Type.Results
	f.fg.need(f.fg.internalPrefix + "taint")
	if res.Closing.IsValid() {
		off := f.fg.off(res.Closing)
		f.fg.addEdit(&edit{lo: off, hi: off, parts: []any{", taint.Label"}, what: "augmented result " + f.fn.Name.Name})
		return
	}
	lo, hi := f.fg.off(res.Pos()), f.fg.off(res.End())
	f.fg.addEdit(&edit{lo: lo, hi: hi,
		parts: []any{"(" + string(f.fg.src[lo:hi]) + ", taint.Label)"},
		what:  "augmented result " + f.fn.Name.Name})
}

func (f *fnGen) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			f.stmt(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			f.stmt(s.Init)
		}
		f.stmt(s.Body)
		if s.Else != nil {
			f.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			f.stmt(s.Init)
		}
		if s.Post != nil {
			f.stmt(s.Post)
		}
		f.stmt(s.Body)
	case *ast.RangeStmt:
		ls := f.labelsOf(s.X)
		if s.Key != nil {
			f.bind(s.Key, ls)
		}
		if s.Value != nil {
			f.bind(s.Value, ls)
		}
		f.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			f.stmt(s.Init)
		}
		f.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f.stmt(s.Init)
		}
		f.stmt(s.Assign)
		f.stmt(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			f.stmt(st)
		}
	case *ast.SelectStmt:
		f.stmt(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			f.stmt(s.Comm)
		}
		for _, st := range s.Body {
			f.stmt(st)
		}
	case *ast.LabeledStmt:
		f.stmt(s.Stmt)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			f.callStmt(call)
		}
	case *ast.DeferStmt:
		f.callStmt(s.Call)
	case *ast.GoStmt:
		f.callStmt(s.Call)
	case *ast.AssignStmt:
		f.assign(s)
	case *ast.ReturnStmt:
		f.ret(s)
	case *ast.DeclStmt:
		f.declStmt(s)
	}
	// Remaining kinds (IncDec, Branch, Empty, Send, ...) neither produce
	// nor consume labels; nested misuse is caught by validate.
}

func (f *fnGen) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		var ls labset
		for _, v := range vs.Values {
			ls = ls.union(f.labelsOf(v))
		}
		for _, name := range vs.Names {
			f.bind(name, ls)
		}
	}
}

// assign handles both label-producing defines and ordinary propagation.
func (f *fnGen) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			ci := f.fg.classifyCall(call)
			if ci.class == ccBad {
				f.errf(call.Pos(), "%s", ci.badMsg)
				f.handled[call] = true
				return
			}
			if ci.labelProducing() {
				f.labelDefine(s, call, ci)
				return
			}
			// Tuple from an unlabelled call: propagate the union of the
			// argument labels into every result, mirroring pmvet's
			// taint-gap conservatism so the generated labels are never
			// weaker than what that analyzer demands.
			if len(s.Lhs) > 1 {
				ls := f.labelsOf(call)
				for _, l := range s.Lhs {
					f.bind(l, ls)
				}
				return
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			f.bind(s.Lhs[i], f.labelsOf(s.Rhs[i]))
		}
		return
	}
	if len(s.Rhs) == 1 { // comma-ok forms: v, ok := m[k] / x.(T) / <-ch
		ls := f.labelsOf(s.Rhs[0])
		for _, l := range s.Lhs {
			f.bind(l, ls)
		}
	}
}

// labelDefine rewrites `v := t.Load64(a)` (and CAS/Root/augmented-call
// defines) into `v, vLab := ...`, binding the virtual label to the loaded
// value.
func (f *fnGen) labelDefine(s *ast.AssignStmt, call *ast.CallExpr, ci callInfo) {
	f.handled[call] = true
	if s.Tok != token.DEFINE {
		f.errf(s.Pos(), "result of a label-producing call must be bound with := so its taint label can be threaded (got %s)", s.Tok)
		return
	}
	if len(s.Lhs) != ci.results {
		f.errf(s.Pos(), "label-producing call must bind all %d results (got %d)", ci.results, len(s.Lhs))
		return
	}
	valIdx := 0
	if ci.class == ccHook && ci.kind == lint.HookCAS {
		valIdx = 1 // CAS64's loaded old value
	}
	v := f.newVlab(baseName(s.Lhs[valIdx]))
	if ci.class == ccAugCall {
		// The augmented label covers the function's results collectively.
		for _, l := range s.Lhs {
			f.bind(l, labset{v})
		}
	} else {
		f.bind(s.Lhs[valIdx], labset{v})
	}
	if f.final {
		off := f.fg.off(s.Lhs[len(s.Lhs)-1].End())
		f.fg.addEdit(&edit{lo: off, hi: off, parts: []any{", ", v}, what: "label binding"})
	}
	if ci.class == ccHook && ci.kind == lint.HookCAS {
		f.storeArgs(call, ci, 2, 0)
	}
}

// callStmt handles a call in statement position (ExprStmt, defer, go).
func (f *fnGen) callStmt(call *ast.CallExpr) {
	ci := f.fg.classifyCall(call)
	switch ci.class {
	case ccBad:
		f.errf(call.Pos(), "%s", ci.badMsg)
		f.handled[call] = true
	case ccSyncHint:
		f.hintEdit(call, ci)
	case ccHook:
		switch ci.kind {
		case lint.HookStore, lint.HookNTStore:
			f.handled[call] = true
			f.storeArgs(call, ci, 1, 0)
		case lint.HookCAS:
			f.handled[call] = true
			f.storeArgs(call, ci, 2, 0)
		case lint.HookLoad:
			f.handled[call] = true // discarded result; extra label result is also discarded
		}
	case ccPoolRoot, ccAugCall:
		f.handled[call] = true // results discarded, including the new label
	}
}

// storeArgs appends ", <valLab>, <addrLab>" to a store-shaped hook call.
func (f *fnGen) storeArgs(call *ast.CallExpr, ci callInfo, valIdx, addrIdx int) {
	if !f.final {
		return
	}
	want := 2
	if ci.kind == lint.HookCAS {
		want = 3
	}
	if len(call.Args) != want {
		f.errf(call.Pos(), "%s: expected %d arguments, got %d", ci.sel.Sel.Name, want, len(call.Args))
		return
	}
	lastEnd, rp := f.fg.off(call.Args[len(call.Args)-1].End()), f.fg.off(call.Rparen)
	if tail := string(f.fg.src[lastEnd:rp]); strings.ContainsAny(tail, ",\n") {
		f.errf(call.Pos(), "%s: calls with trailing commas or multi-line argument lists are not supported (labels are appended in place)", ci.sel.Sel.Name)
		return
	}
	recv := f.srcText(ci.sel.X)
	parts := []any{", "}
	parts = append(parts, f.term(call.Pos(), f.labelsOf(call.Args[valIdx]), recv)...)
	parts = append(parts, ", ")
	parts = append(parts, f.term(call.Pos(), f.labelsOf(call.Args[addrIdx]), recv)...)
	f.fg.addEdit(&edit{lo: rp, hi: rp, parts: parts, what: ci.sel.Sel.Name + " labels"})
}

// fieldText renders arg as gofmt lays it out inside a composite-literal
// field: go/printer with a fresh FileSet spaces top-level binary operators
// (`b + bktLock`), whereas source text copied from a call-argument position
// keeps gofmt's tightened form (`b+bktLock`) and would leave the generated
// file unformatted.
func (f *fnGen) fieldText(e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, token.NewFileSet(), e); err != nil {
		return f.srcText(e)
	}
	return b.String()
}

// hintEdit rewrites m.SyncVarHint(name, addr, size, init) into
// m.Env().AnnotateSyncVar(core.SyncVar{...}).
func (f *fnGen) hintEdit(call *ast.CallExpr, ci callInfo) {
	f.handled[call] = true
	if len(call.Args) != 4 {
		f.errf(call.Pos(), "SyncVarHint: expected 4 arguments, got %d", len(call.Args))
		return
	}
	if !f.final {
		return
	}
	lo, hi := f.fg.off(call.Pos()), f.fg.off(call.End())
	if strings.Contains(string(f.fg.src[lo:hi]), "\n") {
		f.errf(call.Pos(), "SyncVarHint: multi-line calls are not supported")
		return
	}
	f.fg.need(f.fg.internalPrefix + "core")
	repl := fmt.Sprintf("%s.Env().AnnotateSyncVar(core.SyncVar{Name: %s, Addr: %s, Size: %s, InitVal: %s})",
		f.srcText(ci.sel.X), f.fieldText(call.Args[0]), f.fieldText(call.Args[1]),
		f.fieldText(call.Args[2]), f.fieldText(call.Args[3]))
	f.fg.addEdit(&edit{lo: lo, hi: hi, parts: []any{repl}, what: "SyncVarHint"})
}

func (f *fnGen) ret(s *ast.ReturnStmt) {
	if len(s.Results) == 0 {
		if f.augmented {
			f.errf(s.Pos(), "augmented function %s must return its results explicitly", f.fn.Name.Name)
		}
		return
	}
	// Direct passthrough: `return t.Load64(a)` in a function whose result
	// list is being augmented — the hook's own (value, label) pair becomes
	// the return tuple, no edit needed.
	if len(s.Results) == 1 {
		if call, ok := s.Results[0].(*ast.CallExpr); ok {
			ci := f.fg.classifyCall(call)
			if ci.labelProducing() && ci.results == f.origResults {
				f.returnLabeled = true
				f.handled[call] = true
				if ci.class == ccHook && ci.kind == lint.HookCAS {
					f.storeArgs(call, ci, 2, 0)
				}
				return
			}
		}
	}
	// Union the labels of the returned values, skipping error-typed
	// results: an error deriving from a loaded value does not make the
	// function's data results tainted, and augmenting error-only
	// functions would break the `if err := f(); err != nil` idiom.
	var ls labset
	if len(s.Results) == f.origResults {
		sig, _ := f.fg.pkg.Info.Defs[f.fn.Name].(*types.Func)
		for i, r := range s.Results {
			if sig != nil && sig.Type().(*types.Signature).Results().At(i).Type().String() == "error" {
				continue
			}
			ls = ls.union(f.labelsOf(r))
		}
	} else if f.augmented {
		f.errf(s.Pos(), "augmented function %s: return arity %d does not match signature (%d results)", f.fn.Name.Name, len(s.Results), f.origResults)
		return
	}
	if len(ls) > 0 {
		f.returnLabeled = true
	}
	if f.augmented && f.final {
		recv := f.memParam
		if recv == "" && len(ls) >= 2 {
			f.errf(s.Pos(), "cannot emit a label union: %s has no *pmplain.Mem parameter", f.fn.Name.Name)
			return
		}
		last := s.Results[len(s.Results)-1]
		off := f.fg.off(last.End())
		parts := append([]any{", "}, f.term(s.Pos(), ls, recv)...)
		f.fg.addEdit(&edit{lo: off, hi: off, parts: parts, what: "augmented return"})
	}
}

// term renders a label set: None, a single label, or a runtime union.
func (f *fnGen) term(pos token.Pos, ls labset, recv string) []any {
	switch len(ls) {
	case 0:
		f.fg.need(f.fg.internalPrefix + "taint")
		return []any{"taint.None"}
	case 1:
		ls[0].used = true
		return []any{ls[0]}
	case 2:
		ls[0].used, ls[1].used = true, true
		return []any{recv + ".Env().Labels().Union(", ls[0], ", ", ls[1], ")"}
	default:
		f.fg.need(f.fg.internalPrefix + "taint")
		parts := []any{recv + ".Env().Labels().UnionAll([]taint.Label{"}
		for i, v := range ls {
			v.used = true
			if i > 0 {
				parts = append(parts, ", ")
			}
			parts = append(parts, v)
		}
		return append(parts, "})")
	}
}

// labelsOf unions the label sets of every identifier mentioned in e.
func (f *fnGen) labelsOf(e ast.Expr) labset {
	var ls labset
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := f.fg.pkg.Info.Uses[id]; obj != nil {
			ls = ls.union(f.env[obj])
		}
		return true
	})
	return ls
}

// bind accumulates labels into the object behind an assignment target.
// Branches are not path-sensitive: labels accumulate across the whole
// function body in source order, which over-taints but never under-taints.
func (f *fnGen) bind(target ast.Expr, ls labset) {
	if len(ls) == 0 {
		return
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return // field/index writes are not tracked (as in hand code)
	}
	info := f.fg.pkg.Info
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	f.env[obj] = f.env[obj].union(ls)
}

func (f *fnGen) newVlab(base string) *vlab {
	v := &vlab{base: base}
	f.vlabs = append(f.vlabs, v)
	return v
}

func baseName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		return id.Name
	}
	return "v"
}

// validate reports any label-producing or label-consuming call that the
// statement walker did not handle — loads buried inside larger expressions,
// stores in non-statement position, and so on. Keeping these hard errors
// (rather than silently dropping labels) is what lets the zero-findings
// pmvet gate on generated output hold.
func (f *fnGen) validate() {
	ast.Inspect(f.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || f.handled[call] {
			return true
		}
		ci := f.fg.classifyCall(call)
		switch {
		case ci.class == ccBad:
			f.errf(call.Pos(), "%s", ci.badMsg)
		case ci.labelProducing():
			f.errf(call.Pos(), "%s must be the entire right-hand side of a := binding (or returned directly from an augmented function); nested uses cannot have their label threaded", callName(call))
		case ci.class == ccHook && (ci.kind == lint.HookStore || ci.kind == lint.HookNTStore):
			f.errf(call.Pos(), "%s must appear in statement position", callName(call))
		case ci.class == ccSyncHint:
			f.errf(call.Pos(), "SyncVarHint must appear in statement position")
		}
		return true
	})
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}

// nameLabels assigns concrete names after the whole function is analyzed:
// labels some edit references become `<value>Lab`; untouched ones become
// the blank identifier, matching the hand idiom `k, _ := t.Load64(...)`.
func (f *fnGen) nameLabels() {
	taken := map[string]bool{}
	ast.Inspect(f.fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			taken[id.Name] = true
		}
		return true
	})
	for _, v := range f.vlabs {
		if !v.used {
			v.name = "_"
			continue
		}
		name := v.base + "Lab"
		for i := 2; taken[name]; i++ {
			name = fmt.Sprintf("%sLab%d", v.base, i)
		}
		taken[name] = true
		v.name = name
	}
}

func (f *fnGen) srcText(n ast.Node) string {
	return string(f.fg.src[f.fg.off(n.Pos()):f.fg.off(n.End())])
}
