// Package pmdk is a miniature re-implementation of the parts of Intel's
// Persistent Memory Development Kit (libpmemobj) that the evaluated PM
// systems rely on: pool creation/opening with a root object, a persistent
// heap allocator, and undo-log transactions whose recovery reverts
// uncommitted modifications. It exists so that the reproduction exhibits the
// recovery behaviours the paper's post-failure validation and default
// whitelist depend on (§4.4): undo-logged data is restored on open (turning
// detected inconsistencies into validated false positives) and transactional
// allocation is redo-log-protected (covered by the default whitelist).
package pmdk

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// Pool layout (offsets in bytes).
const (
	offMagic   = 0
	offRoot    = 8
	offHeapTop = 16

	// Undo log region.
	offTxActive  = 64                // 1 while a transaction is open
	offTxCount   = 72                // number of undo entries
	logEntryOff  = 128               // first undo entry
	logEntrySize = 16 + maxUndoRange // 256 bytes, keeping HeapBase line aligned
	maxUndoRange = 240               // max bytes captured per AddRange
	maxUndoEnts  = 62

	// offRedoTop is the redo-log slot backing AllocRedo: the intended
	// heap top is persisted here before the bump pointer itself is
	// (lazily) persisted, making the allocation crash-consistent even
	// though readers may observe a dirty bump pointer.
	offRedoTop = 80

	// HeapBase is where allocations start.
	HeapBase = logEntryOff + maxUndoEnts*logEntrySize
)

// Magic tags a formatted pool.
const Magic = 0x504d444b2d4d494e // "PMDK-MIN"

// ErrNotFormatted is returned by Open on a pool without the expected magic.
var ErrNotFormatted = errors.New("pmdk: pool not formatted")

// ErrOutOfMemory is returned when the heap is exhausted.
var ErrOutOfMemory = errors.New("pmdk: out of persistent memory")

// ObjPool is a formatted persistent object pool.
type ObjPool struct {
	allocMu sync.Mutex
	txMu    sync.Mutex
	size    uint64
}

// Create formats the pool backing t's environment: it writes the header,
// clears the undo log and initializes the heap. Like libpmemobj's
// pmemobj_create, formatting touches and persists a significant region,
// which is exactly the initialization cost the in-memory checkpoints of the
// fuzzer amortize (paper §5, Figure 10).
func Create(t *rt.Thread) *ObjPool {
	p := &ObjPool{size: t.Env().Pool().Size()}
	// Format the whole pool line by line, persisting as real pool
	// formatting does (pmemobj_create lays out lanes and per-chunk heap
	// headers across the entire file — this is the cost Figure 10's
	// checkpoints amortize).
	zero := make([]byte, pmem.LineSize)
	for off := uint64(0); off < p.size; off += pmem.LineSize {
		t.NTStoreBytes(off, zero, taint.None, taint.None)
	}
	t.NTStore64(offHeapTop, HeapBase, taint.None, taint.None)
	t.NTStore64(offRoot, 0, taint.None, taint.None)
	t.NTStore64(offMagic, Magic, taint.None, taint.None)
	t.Fence()
	return p
}

// Open maps an existing pool and runs recovery: if a transaction was active
// at crash time, every undo-logged range is reverted to its logged contents
// and the log is cleared. This is the custom recovery mechanism that fixes
// clevel hashing's construction-time inconsistencies (paper Figure 7).
func Open(t *rt.Thread) (*ObjPool, error) {
	magic, _ := t.Load64(offMagic)
	if magic != Magic {
		return nil, fmt.Errorf("%w: magic %#x", ErrNotFormatted, magic)
	}
	p := &ObjPool{size: t.Env().Pool().Size()}
	active, _ := t.Load64(offTxActive)
	if active != 0 {
		p.recover(t)
	}
	// Replay the AllocRedo redo slot: the persisted intention wins over a
	// possibly stale bump pointer.
	redo, _ := t.Load64(offRedoTop)
	top, _ := t.Load64(offHeapTop)
	if redo > top && redo <= p.size {
		t.Store64(offHeapTop, redo, taint.None, taint.None)
		t.Persist(offHeapTop, 8)
	}
	return p, nil
}

// recover reverts uncommitted undo-logged ranges.
func (p *ObjPool) recover(t *rt.Thread) {
	count, _ := t.Load64(offTxCount)
	if count > maxUndoEnts {
		count = maxUndoEnts
	}
	// Revert in reverse order so overlapping ranges restore the oldest
	// image.
	for i := int64(count) - 1; i >= 0; i-- {
		ent := uint64(logEntryOff) + uint64(i)*logEntrySize
		off, _ := t.Load64(ent)
		n, _ := t.Load64(ent + 8)
		if n > maxUndoRange || off+n > p.size {
			continue
		}
		data, _ := t.LoadBytes(ent+16, n)
		t.StoreBytes(off, data, taint.None, taint.None)
		t.Persist(off, n)
	}
	t.Store64(offTxCount, 0, taint.None, taint.None)
	t.Store64(offTxActive, 0, taint.None, taint.None)
	t.Persist(offTxActive, 16)
}

// Root returns the root object offset (0 when unset) and its taint label.
func (p *ObjPool) Root(t *rt.Thread) (pmem.Addr, taint.Label) {
	return t.Load64(offRoot)
}

// SetRoot durably points the pool's root object at off.
func (p *ObjPool) SetRoot(t *rt.Thread, off pmem.Addr) {
	t.Store64(offRoot, off, taint.None, taint.None)
	t.Persist(offRoot, 8)
}

// Alloc carves size bytes (rounded up to a cache line) off the persistent
// heap and durably advances the bump pointer before returning. Because the
// new top is persisted under the allocator lock, concurrent allocations
// never observe a dirty heap pointer.
func (p *ObjPool) Alloc(t *rt.Thread, size uint64) (pmem.Addr, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	return p.allocLocked(t, size, true)
}

func (p *ObjPool) allocLocked(t *rt.Thread, size uint64, persist bool) (pmem.Addr, error) {
	if rem := size % pmem.LineSize; rem != 0 {
		size += pmem.LineSize - rem
	}
	top, lab := t.Load64(offHeapTop)
	if top+size > p.size {
		return 0, ErrOutOfMemory
	}
	t.Store64(offHeapTop, top+size, lab, taint.None)
	if persist {
		t.Persist(offHeapTop, 8)
	}
	return top, nil
}

// AllocRedo is a redo-logged allocation, the concurrency-friendly analogue
// of PMDK's transactional allocation: the intended new heap top is persisted
// into a redo slot first, then the bump pointer is stored *without* an
// immediate flush. Readers of the bump pointer may observe non-persisted
// data — an inconsistency candidate — but recovery replays the redo slot, so
// the pattern is crash-consistent and covered by the default whitelist
// (paper §4.4: "the default whitelist of PMRace includes the transactional
// allocations in PMDK").
func (p *ObjPool) AllocRedo(t *rt.Thread, size uint64) (pmem.Addr, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if rem := size % pmem.LineSize; rem != 0 {
		size += pmem.LineSize - rem
	}
	top, lab := t.Load64(offHeapTop)
	if top+size > p.size {
		return 0, ErrOutOfMemory
	}
	// Redo record first (durable), then the unflushed bump update.
	t.NTStore64(offRedoTop, top+size, lab, taint.None)
	t.Store64(offHeapTop, top+size, lab, taint.None)
	return top, nil
}

// HeapUsed returns the number of allocated heap bytes.
func (p *ObjPool) HeapUsed(t *rt.Thread) uint64 {
	top, _ := t.Load64(offHeapTop)
	return top - HeapBase
}

// Tx is an undo-log transaction. PMRace's post-failure validation relies on
// its recovery semantics; note that, like real PMDK, it provides atomicity
// with respect to crashes but no isolation between threads — in-transaction
// PM writes are immediately visible to other threads (paper §4.4).
type Tx struct {
	p          *rt.Thread
	pool       *ObjPool
	count      uint64
	closed     bool
	heapLogged bool
}

// Begin opens a transaction. Only one transaction may be open at a time
// (the mini-PMDK equivalent of a single lane).
func (p *ObjPool) Begin(t *rt.Thread) *Tx {
	p.txMu.Lock()
	t.Store64(offTxCount, 0, taint.None, taint.None)
	t.Store64(offTxActive, 1, taint.None, taint.None)
	t.Persist(offTxActive, 16)
	return &Tx{p: t, pool: p}
}

// AddRange undo-logs [off, off+n) so that a crash before Commit reverts it.
// n must be at most 256 bytes (split larger ranges).
func (tx *Tx) AddRange(off pmem.Addr, n uint64) error {
	if tx.closed {
		return errors.New("pmdk: transaction closed")
	}
	if n > maxUndoRange {
		return fmt.Errorf("pmdk: AddRange of %d bytes exceeds %d", n, maxUndoRange)
	}
	if tx.count >= maxUndoEnts {
		return errors.New("pmdk: undo log full")
	}
	t := tx.p
	ent := uint64(logEntryOff) + tx.count*logEntrySize
	data, _ := t.LoadBytes(off, n)
	t.Store64(ent, off, taint.None, taint.None)
	t.Store64(ent+8, n, taint.None, taint.None)
	t.StoreBytes(ent+16, data, taint.None, taint.None)
	t.Persist(ent, 16+n)
	tx.count++
	t.Store64(offTxCount, tx.count, taint.None, taint.None)
	t.Persist(offTxCount, 8)
	return nil
}

// Alloc performs a transactional allocation. Real PMDK implements this with
// a redo log that makes it crash-consistent even though the bump pointer is
// not persisted until commit; the default whitelist therefore marks this
// function as benign (paper §4.4: "the default whitelist of PMRace includes
// the transactional allocations in PMDK"). The heap pointer is undo-logged,
// so a crash before Commit rolls the allocation back.
func (tx *Tx) Alloc(size uint64) (pmem.Addr, error) {
	if tx.closed {
		return 0, errors.New("pmdk: transaction closed")
	}
	tx.pool.allocMu.Lock()
	defer tx.pool.allocMu.Unlock()
	if !tx.heapLogged {
		if err := tx.addHeapTop(); err != nil {
			return 0, err
		}
	}
	// The bump pointer stays unpersisted until commit: reads of it are
	// inconsistency candidates, protected (whitelisted) by redo logging.
	return tx.pool.allocLocked(tx.p, size, false)
}

func (tx *Tx) addHeapTop() error {
	if err := tx.AddRange(offHeapTop, 8); err != nil {
		return err
	}
	tx.heapLogged = true
	return nil
}

// Commit makes the transaction's effects durable and clears the undo log.
func (tx *Tx) Commit() {
	if tx.closed {
		return
	}
	t := tx.p
	// Persist everything the transaction touched: mini-PMDK persists the
	// undo-logged ranges (real PMDK flushes the modified ranges at
	// tx_commit).
	count, _ := t.Load64(offTxCount)
	for i := uint64(0); i < count && i < maxUndoEnts; i++ {
		ent := uint64(logEntryOff) + i*logEntrySize
		off, _ := t.Load64(ent)
		n, _ := t.Load64(ent + 8)
		if n <= maxUndoRange && off+n <= tx.pool.size {
			t.Persist(off, n)
		}
	}
	t.Persist(offHeapTop, 8)
	t.Store64(offTxActive, 0, taint.None, taint.None)
	t.Store64(offTxCount, 0, taint.None, taint.None)
	t.Persist(offTxActive, 16)
	tx.closed = true
	tx.pool.txMu.Unlock()
}

// Abort rolls the transaction back immediately using the undo log, exactly
// as crash recovery would.
func (tx *Tx) Abort() {
	if tx.closed {
		return
	}
	tx.pool.recover(tx.p)
	tx.closed = true
	tx.pool.txMu.Unlock()
}

// DefaultWhitelist returns the default benign-pattern whitelist entries
// (paper §4.4): mini-PMDK's redo-log-protected transactional allocation and
// the undo-log machinery itself.
func DefaultWhitelist() []string {
	return []string{
		"pmdk.(*Tx).Alloc",
		"pmdk.(*Tx).AddRange",
		"pmdk.(*ObjPool).AllocRedo",
		"pmdk.(*ObjPool).recover",
	}
}
