package pmdk

import (
	"errors"
	"testing"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

const poolSize = 256 << 10

func setup(t *testing.T) (*rt.Env, *rt.Thread, *ObjPool) {
	t.Helper()
	env := rt.NewEnv(pmem.New(poolSize), rt.Config{})
	th := env.Spawn()
	return env, th, Create(th)
}

func TestCreateFormatsPool(t *testing.T) {
	env, th, _ := setup(t)
	magic, _ := th.Load64(offMagic)
	if magic != Magic {
		t.Fatalf("magic = %#x", magic)
	}
	if !env.Pool().PersistedEquals(0, HeapBase) {
		t.Fatalf("header must be fully persisted after Create")
	}
}

func TestOpenRejectsUnformattedPool(t *testing.T) {
	env := rt.NewEnv(pmem.New(poolSize), rt.Config{})
	th := env.Spawn()
	if _, err := Open(th); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
}

func TestOpenFormattedPool(t *testing.T) {
	env, _, _ := setup(t)
	img := env.Pool().CrashImage()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if _, err := Open(th2); err != nil {
		t.Fatalf("Open failed: %v", err)
	}
}

func TestAllocAdvancesAndPersists(t *testing.T) {
	env, th, p := setup(t)
	a, err := p.Alloc(th, 100)
	if err != nil || a != HeapBase {
		t.Fatalf("first alloc = %d, %v", a, err)
	}
	b, err := p.Alloc(th, 10)
	if err != nil || b <= a {
		t.Fatalf("second alloc = %d, %v", b, err)
	}
	if b%pmem.LineSize != 0 {
		t.Fatalf("allocations must be line aligned, got %d", b)
	}
	if !env.Pool().PersistedEquals(offHeapTop, 8) {
		t.Fatalf("heap top must be persisted after Alloc")
	}
	if p.HeapUsed(th) != 192 {
		t.Fatalf("heap used = %d, want 192 (two line-rounded allocs)", p.HeapUsed(th))
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	_, th, p := setup(t)
	if _, err := p.Alloc(th, poolSize); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRootRoundTrip(t *testing.T) {
	_, th, p := setup(t)
	off, _ := p.Alloc(th, 64)
	p.SetRoot(th, off)
	got, _ := p.Root(th)
	if got != off {
		t.Fatalf("root = %d, want %d", got, off)
	}
}

func TestTxCommitKeepsChanges(t *testing.T) {
	env, th, p := setup(t)
	obj, _ := p.Alloc(th, 64)
	th.Store64(obj, 1, taint.None, taint.None)
	th.Persist(obj, 8)

	tx := p.Begin(th)
	if err := tx.AddRange(obj, 8); err != nil {
		t.Fatalf("AddRange: %v", err)
	}
	th.Store64(obj, 2, taint.None, taint.None)
	tx.Commit()

	// Crash after commit: the new value must survive.
	img := env.Pool().CrashImage()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if _, err := Open(th2); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if v, _ := th2.Load64(obj); v != 2 {
		t.Fatalf("value after commit+crash = %d, want 2", v)
	}
}

func TestTxCrashBeforeCommitReverts(t *testing.T) {
	env, th, p := setup(t)
	obj, _ := p.Alloc(th, 64)
	th.Store64(obj, 1, taint.None, taint.None)
	th.Persist(obj, 8)

	tx := p.Begin(th)
	if err := tx.AddRange(obj, 8); err != nil {
		t.Fatalf("AddRange: %v", err)
	}
	th.Store64(obj, 2, taint.None, taint.None)
	th.Persist(obj, 8) // even persisted, recovery must revert it

	img := env.Pool().CrashImage() // crash before Commit
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if _, err := Open(th2); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if v, _ := th2.Load64(obj); v != 1 {
		t.Fatalf("value after crash = %d, want reverted 1", v)
	}
	if active, _ := th2.Load64(offTxActive); active != 0 {
		t.Fatalf("recovery must clear the active flag")
	}
}

func TestTxAllocRolledBackOnCrash(t *testing.T) {
	env, th, p := setup(t)
	topBefore, _ := th.Load64(offHeapTop)

	tx := p.Begin(th)
	if _, err := tx.Alloc(128); err != nil {
		t.Fatalf("tx alloc: %v", err)
	}
	// Crash before commit: heap top must roll back (no PM leak).
	img := env.Pool().CrashImage()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if _, err := Open(th2); err != nil {
		t.Fatalf("Open: %v", err)
	}
	topAfter, _ := th2.Load64(offHeapTop)
	if topAfter != topBefore {
		t.Fatalf("heap top = %d, want rolled back to %d", topAfter, topBefore)
	}
}

func TestTxAllocCommitted(t *testing.T) {
	env, th, p := setup(t)
	tx := p.Begin(th)
	off, err := tx.Alloc(128)
	if err != nil {
		t.Fatalf("tx alloc: %v", err)
	}
	tx.Commit()
	img := env.Pool().CrashImage()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if _, err := Open(th2); err != nil {
		t.Fatalf("Open: %v", err)
	}
	top, _ := th2.Load64(offHeapTop)
	if top <= off {
		t.Fatalf("committed allocation lost: top=%d off=%d", top, off)
	}
}

func TestTxAbortRevertsImmediately(t *testing.T) {
	_, th, p := setup(t)
	obj, _ := p.Alloc(th, 64)
	th.Store64(obj, 5, taint.None, taint.None)
	th.Persist(obj, 8)
	tx := p.Begin(th)
	tx.AddRange(obj, 8)
	th.Store64(obj, 6, taint.None, taint.None)
	tx.Abort()
	if v, _ := th.Load64(obj); v != 5 {
		t.Fatalf("abort must revert: got %d", v)
	}
	// Pool must be reusable after abort.
	tx2 := p.Begin(th)
	tx2.Commit()
}

func TestTxAddRangeLimits(t *testing.T) {
	_, th, p := setup(t)
	tx := p.Begin(th)
	defer tx.Commit()
	if err := tx.AddRange(HeapBase, maxUndoRange+1); err == nil {
		t.Fatalf("oversized AddRange must fail")
	}
	for i := 0; i < maxUndoEnts; i++ {
		if err := tx.AddRange(HeapBase+pmem.Addr(i*8), 8); err != nil {
			t.Fatalf("AddRange %d: %v", i, err)
		}
	}
	if err := tx.AddRange(HeapBase, 8); err == nil {
		t.Fatalf("undo log overflow must fail")
	}
}

func TestTxClosedOperationsFail(t *testing.T) {
	_, th, p := setup(t)
	tx := p.Begin(th)
	tx.Commit()
	if err := tx.AddRange(HeapBase, 8); err == nil {
		t.Fatalf("AddRange on closed tx must fail")
	}
	if _, err := tx.Alloc(64); err == nil {
		t.Fatalf("Alloc on closed tx must fail")
	}
	tx.Commit() // must be a no-op, not a double unlock
	tx.Abort()  // likewise
}

func TestMultipleUndoRangesRevertInOrder(t *testing.T) {
	env, th, p := setup(t)
	obj, _ := p.Alloc(th, 64)
	th.Store64(obj, 10, taint.None, taint.None)
	th.Store64(obj+8, 20, taint.None, taint.None)
	th.Persist(obj, 16)
	tx := p.Begin(th)
	tx.AddRange(obj, 8)
	th.Store64(obj, 11, taint.None, taint.None)
	tx.AddRange(obj+8, 8)
	th.Store64(obj+8, 21, taint.None, taint.None)
	th.Persist(obj, 16)
	img := env.Pool().CrashImage()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	Open(th2)
	a, _ := th2.Load64(obj)
	b, _ := th2.Load64(obj + 8)
	if a != 10 || b != 20 {
		t.Fatalf("recovered = %d %d, want 10 20", a, b)
	}
}

func TestTxAllocDirtyHeapTopIsWhitelistableCandidate(t *testing.T) {
	env, th, p := setup(t)
	tx := p.Begin(th)
	if _, err := tx.Alloc(64); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	// A second transactional allocation reads the unpersisted heap top:
	// an intra-thread candidate whose stack contains the whitelisted
	// frame.
	if _, err := tx.Alloc(64); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	tx.Commit()
	if got := len(env.Detector().Candidates()); got == 0 {
		t.Fatalf("transactional allocation must create candidates")
	}
}

func TestDefaultWhitelistCoversTxAlloc(t *testing.T) {
	found := false
	for _, e := range DefaultWhitelist() {
		if e == "pmdk.(*Tx).Alloc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("default whitelist must cover transactional allocation: %v", DefaultWhitelist())
	}
}

func TestAllocRedoCrashConsistent(t *testing.T) {
	env, th, p := setup(t)
	off, err := p.AllocRedo(th, 128)
	if err != nil {
		t.Fatalf("alloc redo: %v", err)
	}
	// The bump pointer is dirty (unpersisted), but the redo slot is
	// durable: after a crash, Open must replay it so the allocation is
	// not handed out twice.
	img := env.Pool().CrashImage()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	p2, err := Open(th2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	off2, err := p2.AllocRedo(th2, 128)
	if err != nil {
		t.Fatalf("alloc after recovery: %v", err)
	}
	if off2 <= off {
		t.Fatalf("recovered allocator reused space: %d then %d", off, off2)
	}
}

func TestAllocRedoDirtyBumpIsCandidate(t *testing.T) {
	env, th, p := setup(t)
	if _, err := p.AllocRedo(th, 64); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	th2 := env.Spawn()
	if _, err := p.AllocRedo(th2, 64); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	inter, _ := env.Detector().CandidateCounts()
	if inter == 0 {
		t.Fatalf("cross-thread AllocRedo must create inter candidates")
	}
}

func TestAllocRedoOutOfMemory(t *testing.T) {
	_, th, p := setup(t)
	if _, err := p.AllocRedo(th, poolSize); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
}
