package wire

import (
	"testing"
)

// FuzzParser asserts the protocol parser never panics, never loses framing
// permanently, and never buffers unbounded input, whatever bytes arrive and
// however they are chunked. Run with `go test -fuzz=FuzzParser ./internal/wire`;
// the checked-in corpus under testdata/fuzz/FuzzParser replays as part of
// the normal test suite.
func FuzzParser(f *testing.F) {
	f.Add([]byte("set key1 0 0 5\r\nhello\r\nget key1\r\n"), uint8(0))
	f.Add([]byte("gets a b c\r\nincr a 1 noreply\r\nflush_all 0\r\nquit\r\n"), uint8(3))
	f.Add([]byte("set k 0 0 99999999\r\njunk"), uint8(1))
	f.Add([]byte("set k 0 0 6000\r\n"), uint8(7))
	f.Add([]byte("\x00\x01bogus\r\nset\r\nget \xff\xfe\r\n"), uint8(2))
	f.Add([]byte("set k 0 0 3\r\nabcd\r\nget k\r\n"), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		p := NewParser()
		// Deliver in chunks of 1..chunk+1 bytes so framing is exercised at
		// every split point.
		step := int(chunk)%16 + 1
		cmds := 0
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			p.Feed(data[off:end])
			for {
				cmd, ok := p.Next()
				if !ok {
					break
				}
				cmds++
				if cmds > len(data)+1 {
					t.Fatalf("more commands (%d) than input could frame (%d bytes)", cmds, len(data))
				}
				// Ops must never panic either, and malformed frames must
				// carry an error reply.
				ops := cmd.Ops()
				if cmd.Err != "" && len(ops) != 1 {
					t.Fatalf("error command %+v produced %d ops", cmd, len(ops))
				}
			}
		}
		// The parser may only hold one bounded line plus one bounded data
		// block (or a swallow countdown, which holds no bytes at all).
		if len(p.buf) > maxLine+maxData+4 {
			t.Fatalf("parser buffered %d bytes", len(p.buf))
		}
	})
}
