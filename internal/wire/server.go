package wire

import (
	"errors"
	"net"

	"github.com/pmrace-go/pmrace/internal/rt"
)

// Server exposes an instrumented PM store over a real socket: every
// accepted connection gets its own instrumented thread and a Conn, so
// unmodified memcached clients can drive the detector. The fuzzer itself
// bypasses the socket layer and feeds recorded streams through Parser, but
// the server is the proof that the front-end speaks the actual protocol.
type Server struct {
	env *rt.Env
	b   Backend
}

// NewServer serves the backend with threads spawned from env.
func NewServer(env *rt.Env, b Backend) *Server { return &Server{env: env, b: b} }

// Serve accepts connections until the listener closes. Each connection is
// handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(nc)
	}
}

// ServeConn speaks the protocol on one connection and closes it when the
// client quits or the transport fails.
func (s *Server) ServeConn(nc net.Conn) {
	defer nc.Close()
	th := s.env.Spawn()
	defer th.Exit()
	// A scheduler-injected hang (rt.HangError) must kill only this
	// connection, never the accept loop.
	defer func() { recover() }()
	conn := NewConn(s.b, th)
	buf := make([]byte, 4096)
	for {
		n, err := nc.Read(buf)
		if n > 0 {
			out, quit := conn.Input(buf[:n])
			if len(out) > 0 {
				if _, werr := nc.Write(out); werr != nil {
					return
				}
			}
			if quit {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
