package wire

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"github.com/pmrace-go/pmrace/internal/workload"
)

// Protocol limits. Command lines and data blocks are bounded so a malformed
// or hostile stream cannot make the parser buffer unbounded memory.
const (
	// maxLine caps a command line (memcached itself uses 2048).
	maxLine = 2048
	// maxData caps an accepted data block. The largest size class of the
	// memcached target holds 1920 value bytes; anything bigger would be
	// rejected there anyway.
	maxData = 4096
	// maxSwallow caps how much oversized data the parser will consume to
	// stay in sync before giving up and resynchronizing at a newline.
	maxSwallow = 64 << 10
	// maxKey matches the workload model's key bound (real memcached: 250).
	maxKey = 64
)

// RFC-style reply strings (memcached protocol.txt).
const (
	errGeneric   = "ERROR"
	errBadFormat = "CLIENT_ERROR bad command line format"
	errBadChunk  = "CLIENT_ERROR bad data chunk"
	errLineLong  = "CLIENT_ERROR line too long"
	errKeyLong   = "CLIENT_ERROR key too long"
	errTooLarge  = "SERVER_ERROR object too large for cache"
)

// Command is one parsed client command.
type Command struct {
	// Verb is the canonical command name ("set", "get", ...), empty for
	// malformed frames.
	Verb string
	// Keys holds every key of a get/gets; Key is the single key of the
	// other commands.
	Keys []string
	Key  string
	// Data is the payload of a storage command.
	Data []byte
	// Delta is the numeric argument of incr/decr.
	Delta string
	// NoReply suppresses the response.
	NoReply bool
	// Quit marks the connection-close command.
	Quit bool
	// Err, when non-empty, is the RFC error reply for a malformed frame
	// (without trailing CRLF); the command carries no operation payload.
	Err string
	// Raw preserves the original command line for error reporting.
	Raw string
}

// Ops converts the command into workload operations. Malformed frames map
// to a single OpError so the target's error-handling path runs, exactly as
// it does for unparseable lines of synthetic seeds.
func (c *Command) Ops() []workload.Op {
	if c.Err != "" {
		return []workload.Op{{Kind: workload.OpError, Raw: c.Raw}}
	}
	switch c.Verb {
	case "get", "gets":
		kind := workload.OpGet
		if c.Verb == "gets" {
			kind = workload.OpBGet
		}
		ops := make([]workload.Op, 0, len(c.Keys))
		for _, k := range c.Keys {
			ops = append(ops, workload.Op{Kind: kind, Key: k})
		}
		return ops
	case "set":
		return []workload.Op{{Kind: workload.OpSet, Key: c.Key, Value: string(c.Data)}}
	case "add":
		return []workload.Op{{Kind: workload.OpAdd, Key: c.Key, Value: string(c.Data)}}
	case "replace":
		return []workload.Op{{Kind: workload.OpReplace, Key: c.Key, Value: string(c.Data)}}
	case "append":
		return []workload.Op{{Kind: workload.OpAppend, Key: c.Key, Value: string(c.Data)}}
	case "prepend":
		return []workload.Op{{Kind: workload.OpPrepend, Key: c.Key, Value: string(c.Data)}}
	case "delete":
		return []workload.Op{{Kind: workload.OpDelete, Key: c.Key}}
	case "incr":
		return []workload.Op{{Kind: workload.OpIncr, Key: c.Key, Value: c.Delta}}
	case "decr":
		return []workload.Op{{Kind: workload.OpDecr, Key: c.Key, Value: c.Delta}}
	case "flush_all":
		return []workload.Op{{Kind: workload.OpFlushAll}}
	}
	return nil
}

// Parser does incremental framing of the memcached text protocol. Feed it
// byte chunks of any size; Next returns complete commands as they become
// available. The parser never panics and never buffers more than the
// protocol limits, whatever the input.
type Parser struct {
	buf []byte
	// pend is a storage command whose counted data block is still arriving.
	pend *Command
	// pendData is the declared data length of pend.
	pendData int
	// swallow counts bytes of an oversized data block to discard before
	// emitting the pending error command.
	swallow int
	// skipLine discards input through the next newline to resynchronize
	// after an unrecoverable frame error.
	skipLine bool
}

// NewParser returns an empty parser.
func NewParser() *Parser { return &Parser{} }

// Feed appends raw client bytes.
func (p *Parser) Feed(b []byte) { p.buf = append(p.buf, b...) }

// Next returns the next complete command, or ok=false when more bytes are
// needed. Call it in a loop after each Feed.
func (p *Parser) Next() (Command, bool) {
	for {
		// Discard an oversized data block we promised to swallow.
		if p.swallow > 0 {
			n := p.swallow
			if n > len(p.buf) {
				n = len(p.buf)
			}
			p.buf = p.buf[n:]
			p.swallow -= n
			if p.swallow > 0 {
				return Command{}, false
			}
			cmd := *p.pend
			p.pend = nil
			return cmd, true
		}
		// Complete a pending data block.
		if p.pend != nil {
			need := p.pendData
			if len(p.buf) < need+1 {
				return Command{}, false
			}
			data := p.buf[:need]
			rest := p.buf[need:]
			switch {
			case len(rest) >= 2 && rest[0] == '\r' && rest[1] == '\n':
				p.buf = rest[2:]
			case rest[0] == '\n':
				p.buf = rest[1:]
			case rest[0] == '\r' && len(rest) < 2:
				return Command{}, false // CR seen, LF may still arrive
			default:
				// Data not followed by CRLF: bad chunk, resync at
				// the next newline.
				cmd := *p.pend
				cmd.Err, cmd.Data = errBadChunk, nil
				p.pend = nil
				p.buf = rest
				p.skipLine = true
				return cmd, true
			}
			cmd := *p.pend
			cmd.Data = append([]byte(nil), data...)
			p.pend = nil
			return cmd, true
		}
		// Frame a command line.
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			if len(p.buf) > maxLine {
				p.buf = p.buf[:0]
				p.skipLine = true
				return Command{Err: errLineLong}, true
			}
			return Command{}, false
		}
		line := p.buf[:i]
		p.buf = p.buf[i+1:]
		if p.skipLine {
			p.skipLine = false
			continue
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > maxLine {
			return Command{Err: errLineLong, Raw: clip(line)}, true
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		cmd, ok := p.parseLine(string(line))
		if !ok {
			continue // storage header accepted; data block pending
		}
		return cmd, true
	}
}

// parseLine interprets one command line. ok=false means the line was a
// storage header and the parser now waits for its data block.
func (p *Parser) parseLine(line string) (Command, bool) {
	fields := strings.Fields(line)
	verb := fields[0]
	bad := func(msg string) (Command, bool) {
		return Command{Verb: verb, Err: msg, Raw: clip([]byte(line))}, true
	}
	switch verb {
	case "get", "gets":
		if len(fields) < 2 {
			return bad(errBadFormat)
		}
		cmd := Command{Verb: verb, Raw: line}
		for _, k := range fields[1:] {
			if !validKey(k) {
				return bad(errKeyMsg(k))
			}
			cmd.Keys = append(cmd.Keys, k)
		}
		return cmd, true
	case "set", "add", "replace", "append", "prepend":
		if len(fields) < 5 || len(fields) > 6 {
			return bad(errBadFormat)
		}
		cmd := Command{Verb: verb, Key: fields[1], Raw: line}
		if len(fields) == 6 {
			if fields[5] != "noreply" {
				return bad(errBadFormat)
			}
			cmd.NoReply = true
		}
		if !validKey(fields[1]) {
			return bad(errKeyMsg(fields[1]))
		}
		// flags and exptime are parsed for conformance but ignored by
		// the PM store model.
		if _, err := strconv.ParseUint(fields[2], 10, 32); err != nil {
			return bad(errBadFormat)
		}
		if _, err := strconv.ParseInt(fields[3], 10, 64); err != nil {
			return bad(errBadFormat)
		}
		n, err := strconv.ParseUint(fields[4], 10, 32)
		switch {
		case err != nil:
			return bad(errBadFormat)
		case n > maxSwallow:
			// Too big to even swallow: refuse the frame outright. Any
			// data the client sends anyway parses as junk lines and is
			// answered with ERROR, which keeps the parser safe without
			// buffering the declared length.
			return bad(errTooLarge)
		case n > maxData:
			// Consume the data block to stay framed, then report.
			errCmd := cmd
			errCmd.Err = errTooLarge
			p.pend = &errCmd
			p.swallow = int(n) + 2
			return Command{}, false
		}
		p.pend = &cmd
		p.pendData = int(n)
		return Command{}, false
	case "delete":
		if len(fields) < 2 || len(fields) > 3 || (len(fields) == 3 && fields[2] != "noreply") {
			return bad(errBadFormat)
		}
		if !validKey(fields[1]) {
			return bad(errKeyMsg(fields[1]))
		}
		return Command{Verb: verb, Key: fields[1], NoReply: len(fields) == 3, Raw: line}, true
	case "incr", "decr":
		if len(fields) < 3 || len(fields) > 4 || (len(fields) == 4 && fields[3] != "noreply") {
			return bad(errBadFormat)
		}
		if !validKey(fields[1]) {
			return bad(errKeyMsg(fields[1]))
		}
		if _, err := strconv.ParseUint(fields[2], 10, 64); err != nil {
			return bad("CLIENT_ERROR invalid numeric delta argument")
		}
		return Command{Verb: verb, Key: fields[1], Delta: fields[2], NoReply: len(fields) == 4, Raw: line}, true
	case "flush_all":
		// Optional delay argument and noreply.
		cmd := Command{Verb: verb, Raw: line}
		rest := fields[1:]
		if len(rest) > 0 && rest[len(rest)-1] == "noreply" {
			cmd.NoReply = true
			rest = rest[:len(rest)-1]
		}
		if len(rest) > 1 {
			return bad(errBadFormat)
		}
		if len(rest) == 1 {
			if _, err := strconv.ParseUint(rest[0], 10, 32); err != nil {
				return bad(errBadFormat)
			}
		}
		return cmd, true
	case "quit":
		return Command{Verb: verb, Quit: true, Raw: line}, true
	default:
		return Command{Err: errGeneric, Raw: clip([]byte(line))}, true
	}
}

func errKeyMsg(k string) string {
	if len(k) > maxKey {
		return errKeyLong
	}
	return errBadFormat
}

// validKey enforces the workload model's key constraints: printable ASCII,
// no spaces, at most maxKey bytes.
func validKey(k string) bool {
	if len(k) == 0 || len(k) > maxKey {
		return false
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] > '~' {
			return false
		}
	}
	return true
}

// clip bounds raw-line echoes in error reports.
func clip(line []byte) string {
	const n = 80
	if len(line) <= n {
		return string(line)
	}
	return fmt.Sprintf("%s... (%d bytes)", line[:n], len(line))
}
