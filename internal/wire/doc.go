// Package wire is the memcached text-protocol front-end: it turns real
// client bytes into workload operations against an instrumented PM target.
//
// Parser does incremental RFC-style framing (get/gets/set/add/replace/
// append/prepend/delete/incr/decr/flush_all/quit, CRLF-terminated command
// lines, counted data blocks, ERROR / CLIENT_ERROR / SERVER_ERROR replies)
// over arbitrary byte chunks; malformed frames become error commands and the
// parser resynchronizes at the next newline, so fuzz junk can never wedge or
// panic a connection. Commands convert to workload.Op values via
// Command.Ops, which means protocol-driven executions enter the target
// through the exact same Exec path as synthetic operation vectors — bug
// fingerprints (file:line of the racing PM accesses) are identical across
// both modes by construction.
//
// Conn adds response rendering over a Backend (satisfied by the
// instrumented memcached target without an adapter), and Server exposes the
// whole stack on a net.Listener: each accepted connection gets its own
// instrumented thread, so real memcached clients can drive the detector.
//
// The fuzzer does not use Server; internal/fuzz feeds recorded ProtoSeed
// streams straight through Parser (see DESIGN.md §16).
package wire
