package wire

import (
	"fmt"

	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// Backend is the store behind a protocol connection. The instrumented
// memcached target (*memcached.KV) satisfies it directly.
type Backend interface {
	// Get looks a key up.
	Get(t *rt.Thread, key string) ([]byte, bool)
	// Delete removes a key, reporting whether it existed.
	Delete(t *rt.Thread, key string) bool
	// Exec runs one workload operation.
	Exec(t *rt.Thread, op workload.Op) error
}

// Conn couples a Parser with a Backend and renders protocol responses: one
// Conn per client connection, driven by whatever transport delivers the
// bytes. All PM accesses run on the supplied instrumented thread.
//
// Response fidelity notes: the Target.Exec contract reports only
// success/error, so add/replace answer STORED even when the store declined
// them (real memcached: NOT_STORED), and incr/decr answer the stored value
// via a follow-up read.
type Conn struct {
	p *Parser
	b Backend
	t *rt.Thread
}

// NewConn wraps a backend and an instrumented thread.
func NewConn(b Backend, t *rt.Thread) *Conn {
	return &Conn{p: NewParser(), b: b, t: t}
}

// Input feeds client bytes, executes every complete command, and returns
// the accumulated response bytes plus whether the client asked to close.
func (c *Conn) Input(data []byte) (out []byte, quit bool) {
	c.p.Feed(data)
	for {
		cmd, ok := c.p.Next()
		if !ok {
			return out, false
		}
		if cmd.Quit {
			return out, true
		}
		out = c.handle(out, cmd)
	}
}

// handle executes one command and appends its response.
func (c *Conn) handle(out []byte, cmd Command) []byte {
	if cmd.Err != "" {
		// Malformed frames still exercise the target's error path.
		for _, op := range cmd.Ops() {
			c.b.Exec(c.t, op)
		}
		return append(out, cmd.Err+"\r\n"...)
	}
	switch cmd.Verb {
	case "get", "gets":
		for _, k := range cmd.Keys {
			if val, ok := c.b.Get(c.t, k); ok {
				out = append(out, fmt.Sprintf("VALUE %s 0 %d\r\n", k, len(val))...)
				out = append(out, val...)
				out = append(out, "\r\n"...)
			}
		}
		return append(out, "END\r\n"...)
	case "delete":
		ok := c.b.Delete(c.t, cmd.Key)
		if cmd.NoReply {
			return out
		}
		if ok {
			return append(out, "DELETED\r\n"...)
		}
		return append(out, "NOT_FOUND\r\n"...)
	case "incr", "decr":
		err := c.b.Exec(c.t, cmd.Ops()[0])
		if cmd.NoReply {
			return out
		}
		if err != nil {
			return append(out, fmt.Sprintf("SERVER_ERROR %v\r\n", err)...)
		}
		if val, ok := c.b.Get(c.t, cmd.Key); ok {
			return append(out, fmt.Sprintf("%s\r\n", val)...)
		}
		return append(out, "NOT_FOUND\r\n"...)
	case "flush_all":
		err := c.b.Exec(c.t, cmd.Ops()[0])
		if cmd.NoReply {
			return out
		}
		if err != nil {
			return append(out, fmt.Sprintf("SERVER_ERROR %v\r\n", err)...)
		}
		return append(out, "OK\r\n"...)
	default: // storage commands
		err := c.b.Exec(c.t, cmd.Ops()[0])
		if cmd.NoReply {
			return out
		}
		if err != nil {
			return append(out, fmt.Sprintf("SERVER_ERROR %v\r\n", err)...)
		}
		return append(out, "STORED\r\n"...)
	}
}
