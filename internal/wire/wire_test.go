package wire

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets/memcached"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// drain feeds one chunk and collects every completed command.
func drain(t *testing.T, p *Parser, chunk string) []Command {
	t.Helper()
	p.Feed([]byte(chunk))
	var out []Command
	for {
		cmd, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, cmd)
	}
}

func TestParserBasicCommands(t *testing.T) {
	p := NewParser()
	cmds := drain(t, p, "set key1 0 0 5\r\nhello\r\nget key1 key2\r\nincr key1 3\r\ndelete key1 noreply\r\nflush_all\r\nquit\r\n")
	if len(cmds) != 6 {
		t.Fatalf("got %d commands: %+v", len(cmds), cmds)
	}
	set := cmds[0]
	if set.Verb != "set" || set.Key != "key1" || string(set.Data) != "hello" || set.Err != "" {
		t.Fatalf("set = %+v", set)
	}
	if got := set.Ops(); len(got) != 1 || got[0].Kind != workload.OpSet || got[0].Value != "hello" {
		t.Fatalf("set ops = %+v", got)
	}
	if g := cmds[1]; g.Verb != "get" || len(g.Keys) != 2 || len(g.Ops()) != 2 {
		t.Fatalf("get = %+v", g)
	}
	if in := cmds[2]; in.Verb != "incr" || in.Delta != "3" {
		t.Fatalf("incr = %+v", in)
	}
	if d := cmds[3]; d.Verb != "delete" || !d.NoReply {
		t.Fatalf("delete = %+v", d)
	}
	if f := cmds[4]; f.Verb != "flush_all" || f.Ops()[0].Kind != workload.OpFlushAll {
		t.Fatalf("flush_all = %+v", f)
	}
	if !cmds[5].Quit {
		t.Fatalf("quit = %+v", cmds[5])
	}
}

func TestParserIncrementalFraming(t *testing.T) {
	p := NewParser()
	// Deliver one byte at a time: framing must not depend on chunk size.
	input := "set abc 0 0 4\r\nwxyz\r\ngets abc\r\n"
	var cmds []Command
	for i := 0; i < len(input); i++ {
		p.Feed([]byte{input[i]})
		for {
			cmd, ok := p.Next()
			if !ok {
				break
			}
			cmds = append(cmds, cmd)
		}
	}
	if len(cmds) != 2 || string(cmds[0].Data) != "wxyz" || cmds[1].Verb != "gets" {
		t.Fatalf("cmds = %+v", cmds)
	}
	if cmds[1].Ops()[0].Kind != workload.OpBGet {
		t.Fatal("gets should map to OpBGet")
	}
}

func TestParserMalformedFrames(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
	}{
		{"bogus nonsense\r\n", errGeneric},
		{"set\r\n", errBadFormat},
		{"set k 0 0 nine\r\n", errBadFormat},
		{"set k x 0 3\r\nabc\r\n", errBadFormat},
		{"get\r\n", errBadFormat},
		{"get \x01\x02\r\n", errBadFormat},
		{"incr k notanum\r\n", "CLIENT_ERROR invalid numeric delta argument"},
		{"delete k extra args\r\n", errBadFormat},
		{"set " + strings.Repeat("k", 100) + " 0 0 3\r\nabc\r\n", errKeyLong},
		{"set k 0 0 3\r\nabcdef\r\n", errBadChunk},
		{"set k 0 0 99999999\r\n", errTooLarge},
		{strings.Repeat("g", maxLine+10) + "\r\n", errLineLong},
	}
	for _, tc := range cases {
		p := NewParser()
		cmds := drain(t, p, tc.in)
		if len(cmds) == 0 {
			t.Errorf("%.40q: no command", tc.in)
			continue
		}
		if cmds[0].Err != tc.wantErr {
			t.Errorf("%.40q: err %q, want %q", tc.in, cmds[0].Err, tc.wantErr)
		}
		ops := cmds[0].Ops()
		if len(ops) != 1 || ops[0].Kind != workload.OpError {
			t.Errorf("%.40q: malformed frame should map to OpError, got %+v", tc.in, ops)
		}
		// The parser must resynchronize: a well-formed command after the
		// malformed frame still parses.
		rest := drain(t, p, "get recovered\r\n")
		if len(rest) != 1 || rest[0].Verb != "get" || rest[0].Err != "" {
			t.Errorf("%.40q: parser did not resync: %+v", tc.in, rest)
		}
	}
}

func TestParserSwallowsOversizedData(t *testing.T) {
	p := NewParser()
	// 5000 bytes: over maxData, under maxSwallow — the parser consumes the
	// chunk to stay framed and reports the RFC error.
	data := strings.Repeat("z", 5000)
	cmds := drain(t, p, "set big 0 0 5000\r\n"+data+"\r\nget after\r\n")
	if len(cmds) != 2 {
		t.Fatalf("got %d commands", len(cmds))
	}
	if cmds[0].Err != errTooLarge {
		t.Fatalf("err = %q", cmds[0].Err)
	}
	if cmds[1].Verb != "get" || cmds[1].Keys[0] != "after" {
		t.Fatalf("lost framing after swallow: %+v", cmds[1])
	}
}

func TestParserNoreplyAndBareLF(t *testing.T) {
	p := NewParser()
	cmds := drain(t, p, "set k 0 0 3 noreply\nabc\nget k\n")
	if len(cmds) != 2 || !cmds[0].NoReply || string(cmds[0].Data) != "abc" {
		t.Fatalf("cmds = %+v", cmds)
	}
}

// newKV builds an instrumented memcached instance for conn/server tests.
func newKV(t *testing.T) (*rt.Env, *rt.Thread, *memcached.KV) {
	t.Helper()
	kv := memcached.New()
	env := rt.NewEnv(pmem.New(kv.PoolSize()), rt.Config{})
	th := env.Spawn()
	if err := kv.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th, kv
}

func TestConnAgainstMemcached(t *testing.T) {
	env, th, kv := newKV(t)
	defer th.Exit()
	_ = env
	conn := NewConn(kv, th)
	out, quit := conn.Input([]byte("set key1 0 0 5\r\nhello\r\nget key1\r\nget missing\r\ndelete key1\r\ndelete key1\r\nbogus\r\nquit\r\n"))
	if !quit {
		t.Fatal("quit not honoured")
	}
	want := "STORED\r\nVALUE key1 0 5\r\nhello\r\nEND\r\nEND\r\nDELETED\r\nNOT_FOUND\r\nERROR\r\n"
	if string(out) != want {
		t.Fatalf("responses:\n got %q\nwant %q", out, want)
	}
}

func TestConnFlushAll(t *testing.T) {
	_, th, kv := newKV(t)
	defer th.Exit()
	conn := NewConn(kv, th)
	out, _ := conn.Input([]byte("set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nflush_all\r\nget a b\r\n"))
	if !bytes.HasSuffix(out, []byte("OK\r\nEND\r\n")) {
		t.Fatalf("flush_all did not wipe the store: %q", out)
	}
	if kv.Live() != 0 {
		t.Fatalf("live after flush_all = %d", kv.Live())
	}
}

func TestServerOverTCP(t *testing.T) {
	env, setupTh, kv := newKV(t)
	setupTh.Exit()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	srv := NewServer(env, kv)
	go srv.Serve(l)

	// A plain TCP client speaking memcached text protocol.
	nc, err := net.DialTimeout("tcp", l.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Write([]byte("set tcp1 0 0 4\r\ndata\r\nget tcp1\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	want := "STORED\r\nVALUE tcp1 0 4\r\ndata\r\nEND\r\n"
	got := make([]byte, 0, len(want))
	buf := make([]byte, 256)
	for len(got) < len(want) {
		n, err := nc.Read(buf)
		if err != nil {
			t.Fatalf("read after %q: %v", got, err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != want {
		t.Fatalf("response = %q, want %q", got, want)
	}
	// quit closes the connection server-side.
	if _, err := nc.Write([]byte("quit\r\n")); err != nil {
		t.Fatalf("write quit: %v", err)
	}
	for {
		if _, err := nc.Read(buf); err != nil {
			break
		}
	}
}
