package taint

import "sync"

// Label identifies a set of taint sources. The zero label is the empty set.
type Label uint32

// None is the empty taint label.
const None Label = 0

// Event describes a taint source: one PM inter- or intra-thread inconsistency
// candidate, i.e. one dynamic read of non-persisted data.
type Event struct {
	// Addr is the word-aligned PM offset that was read while dirty.
	Addr uint64
	// Epoch is the store epoch observed at the read; the event is only
	// actionable while the word is still dirty at this epoch.
	Epoch uint32
	// WriteSite and ReadSite are the instruction sites of the dirty store
	// and of the read.
	WriteSite uint32
	ReadSite  uint32
	// Writer and Reader are the thread IDs involved. Writer != Reader
	// marks an inter-thread candidate, Writer == Reader an intra-thread
	// candidate.
	Writer int32
	Reader int32
	// Seq is a per-table sequence number, for stable report ordering.
	Seq uint64
}

// Inter reports whether the event crosses threads.
func (e Event) Inter() bool { return e.Writer != e.Reader }

type node struct {
	// leaf event, valid when l == r == 0
	ev Event
	// union children, valid when l or r nonzero
	l, r Label
}

// Table allocates labels and resolves them back to event sets. It is safe
// for concurrent use.
type Table struct {
	mu     sync.Mutex
	nodes  []node // index 0 unused (Label 0 = None)
	unions map[[2]Label]Label
	seq    uint64
}

// NewTable creates an empty label table.
func NewTable() *Table {
	return &Table{
		nodes:  make([]node, 1),
		unions: make(map[[2]Label]Label),
	}
}

// NewLeaf creates a fresh label for a single candidate event.
func (t *Table) NewLeaf(ev Event) Label {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	t.nodes = append(t.nodes, node{ev: ev})
	return Label(len(t.nodes) - 1)
}

// Union returns a label representing the union of a and b. Unions are
// memoised: Union(a, b) == Union(b, a) and repeated calls return the same
// label. Union with None returns the other label unchanged.
func (t *Table) Union(a, b Label) Label {
	if a == None {
		return b
	}
	if b == None || a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]Label{a, b}
	if l, ok := t.unions[key]; ok {
		return l
	}
	t.nodes = append(t.nodes, node{l: a, r: b})
	l := Label(len(t.nodes) - 1)
	t.unions[key] = l
	return l
}

// UnionAll folds Union over a list of labels.
func (t *Table) UnionAll(labels []Label) Label {
	out := None
	for _, l := range labels {
		out = t.Union(out, l)
	}
	return out
}

// Events expands a label into its set of leaf events. The result is
// deduplicated and ordered by event sequence number.
func (t *Table) Events(l Label) []Event {
	if l == None {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[Label]bool{}
	var out []Event
	var walk func(Label)
	walk = func(l Label) {
		if l == None || seen[l] || int(l) >= len(t.nodes) {
			return
		}
		seen[l] = true
		n := t.nodes[l]
		if n.l == None && n.r == None {
			out = append(out, n.ev)
			return
		}
		walk(n.l)
		walk(n.r)
	}
	walk(l)
	// Insertion order of the walk may interleave; sort by Seq for
	// deterministic reports.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Has reports whether the label's event set contains an event with the given
// write site.
func (t *Table) Has(l Label, writeSite uint32) bool {
	for _, ev := range t.Events(l) {
		if ev.WriteSite == writeSite {
			return true
		}
	}
	return false
}

// Size returns the number of allocated labels (excluding None).
func (t *Table) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.nodes) - 1
}
