package taint

import (
	"testing"
	"testing/quick"
)

func ev(writeSite uint32) Event {
	return Event{Addr: 64, WriteSite: writeSite, ReadSite: writeSite + 100, Writer: 1, Reader: 2}
}

func TestNoneIsEmpty(t *testing.T) {
	tb := NewTable()
	if got := tb.Events(None); got != nil {
		t.Fatalf("Events(None) = %v, want nil", got)
	}
}

func TestLeafRoundTrip(t *testing.T) {
	tb := NewTable()
	l := tb.NewLeaf(ev(7))
	events := tb.Events(l)
	if len(events) != 1 || events[0].WriteSite != 7 {
		t.Fatalf("events = %+v, want one event with write site 7", events)
	}
}

func TestUnionWithNone(t *testing.T) {
	tb := NewTable()
	l := tb.NewLeaf(ev(1))
	if tb.Union(l, None) != l || tb.Union(None, l) != l {
		t.Fatalf("union with None must be identity")
	}
	if tb.Union(None, None) != None {
		t.Fatalf("union of None with itself must be None")
	}
}

func TestUnionIdempotent(t *testing.T) {
	tb := NewTable()
	l := tb.NewLeaf(ev(1))
	if tb.Union(l, l) != l {
		t.Fatalf("union with self must be identity")
	}
}

func TestUnionMemoised(t *testing.T) {
	tb := NewTable()
	a := tb.NewLeaf(ev(1))
	b := tb.NewLeaf(ev(2))
	u1 := tb.Union(a, b)
	u2 := tb.Union(b, a)
	u3 := tb.Union(a, b)
	if u1 != u2 || u1 != u3 {
		t.Fatalf("unions %d %d %d must all be the same label", u1, u2, u3)
	}
}

func TestUnionExpandsToBothEvents(t *testing.T) {
	tb := NewTable()
	a := tb.NewLeaf(ev(1))
	b := tb.NewLeaf(ev(2))
	u := tb.Union(a, b)
	events := tb.Events(u)
	if len(events) != 2 {
		t.Fatalf("events = %+v, want 2", events)
	}
	if events[0].Seq > events[1].Seq {
		t.Fatalf("events must be ordered by sequence")
	}
}

func TestNestedUnionsDeduplicate(t *testing.T) {
	tb := NewTable()
	a := tb.NewLeaf(ev(1))
	b := tb.NewLeaf(ev(2))
	c := tb.NewLeaf(ev(3))
	u1 := tb.Union(a, b)
	u2 := tb.Union(b, c)
	u := tb.Union(u1, u2) // {a,b,c}, with b reachable twice
	if got := len(tb.Events(u)); got != 3 {
		t.Fatalf("expanded events = %d, want 3", got)
	}
}

func TestUnionAll(t *testing.T) {
	tb := NewTable()
	labels := []Label{tb.NewLeaf(ev(1)), None, tb.NewLeaf(ev(2)), tb.NewLeaf(ev(3))}
	u := tb.UnionAll(labels)
	if got := len(tb.Events(u)); got != 3 {
		t.Fatalf("UnionAll events = %d, want 3", got)
	}
	if tb.UnionAll(nil) != None {
		t.Fatalf("UnionAll of nothing must be None")
	}
}

func TestHas(t *testing.T) {
	tb := NewTable()
	u := tb.Union(tb.NewLeaf(ev(1)), tb.NewLeaf(ev(2)))
	if !tb.Has(u, 1) || !tb.Has(u, 2) {
		t.Fatalf("Has must find both write sites")
	}
	if tb.Has(u, 3) {
		t.Fatalf("Has must not find absent write site")
	}
}

func TestInterIntraClassification(t *testing.T) {
	inter := Event{Writer: 1, Reader: 2}
	intra := Event{Writer: 3, Reader: 3}
	if !inter.Inter() {
		t.Fatalf("different threads must classify as inter")
	}
	if intra.Inter() {
		t.Fatalf("same thread must classify as intra")
	}
}

func TestSize(t *testing.T) {
	tb := NewTable()
	if tb.Size() != 0 {
		t.Fatalf("fresh table size = %d, want 0", tb.Size())
	}
	a := tb.NewLeaf(ev(1))
	b := tb.NewLeaf(ev(2))
	tb.Union(a, b)
	tb.Union(a, b) // memoised, no growth
	if tb.Size() != 3 {
		t.Fatalf("size = %d, want 3 (two leaves + one union)", tb.Size())
	}
}

// Property: for arbitrary union trees over a set of leaves, the expansion is
// exactly the set of distinct leaves folded in, regardless of fold order.
func TestUnionSetSemanticsProperty(t *testing.T) {
	f := func(picks []uint8) bool {
		tb := NewTable()
		leaves := make([]Label, 8)
		for i := range leaves {
			leaves[i] = tb.NewLeaf(ev(uint32(i + 1)))
		}
		want := map[uint32]bool{}
		acc := None
		for _, p := range picks {
			l := leaves[int(p)%len(leaves)]
			want[uint32(int(p)%len(leaves))+1] = true
			acc = tb.Union(acc, l)
		}
		got := tb.Events(acc)
		if len(got) != len(want) {
			return false
		}
		for _, e := range got {
			if !want[e.WriteSite] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and associative at the label level thanks to
// memoisation with ordered keys.
func TestUnionCommutativeAssociativeProperty(t *testing.T) {
	f := func(i, j, k uint8) bool {
		tb := NewTable()
		leaves := make([]Label, 6)
		for n := range leaves {
			leaves[n] = tb.NewLeaf(ev(uint32(n + 1)))
		}
		a := leaves[int(i)%len(leaves)]
		b := leaves[int(j)%len(leaves)]
		c := leaves[int(k)%len(leaves)]
		if tb.Union(a, b) != tb.Union(b, a) {
			return false
		}
		// Associativity holds at the event-set level.
		l1 := tb.Union(tb.Union(a, b), c)
		l2 := tb.Union(a, tb.Union(b, c))
		e1 := tb.Events(l1)
		e2 := tb.Events(l2)
		if len(e1) != len(e2) {
			return false
		}
		for n := range e1 {
			if e1[n].WriteSite != e2[n].WriteSite {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	tb := NewTable()
	done := make(chan Label)
	for g := 0; g < 8; g++ {
		go func(g int) {
			acc := None
			for i := 0; i < 100; i++ {
				l := tb.NewLeaf(ev(uint32(g*1000 + i)))
				acc = tb.Union(acc, l)
			}
			done <- acc
		}(g)
	}
	for g := 0; g < 8; g++ {
		l := <-done
		if got := len(tb.Events(l)); got != 100 {
			t.Fatalf("goroutine label expanded to %d events, want 100", got)
		}
	}
}

func BenchmarkUnion(b *testing.B) {
	tb := NewTable()
	a := tb.NewLeaf(ev(1))
	c := tb.NewLeaf(ev(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Union(a, c)
	}
}
