// Package taint implements the dynamic taint analysis PMRace uses to confirm
// durable side effects of reading non-persisted data (paper §4.3). It is the
// in-simulation equivalent of LLVM's DataFlowSanitizer: taint is represented
// by small integer labels; a fresh leaf label is created for each
// inconsistency-candidate event (a read of PM_DIRTY data); derived values
// carry the union of their sources' labels; unions are memoised so that the
// same pair of labels always yields the same label, keeping the label space
// compact.
//
// A zero Label means "untainted". Instrumented target code threads labels
// through its computations by hand — the manual analogue of DFSan's
// compiler-inserted shadow propagation (see DESIGN.md, substitution table).
package taint
