package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets/memcached"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// Table4Result compares input-generator quality on memcached's command
// parser (paper Table 4, §6.5): the byte-havoc AFL++ baseline wastes about a
// third of its commands on parse errors, while PMRace's operation mutator
// emits only valid commands and reaches deeper handler code.
type Table4Result struct {
	// Commands counts parsed commands per scheme and Table 4 class.
	Commands map[string]map[string]int
	// Branch is the branch coverage each scheme reached.
	Branch map[string]int
	// Invocations is the total number of process_command invocations.
	Invocations map[string]int
}

// RunTable4 generates seed corpora with both mutators and replays every
// command through the memcached text parser, mirroring the paper's AFL-COV
// measurement over 100 random seeds per mutator.
func RunTable4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	const seedsPerScheme = 100
	out := &Table4Result{
		Commands:    make(map[string]map[string]int),
		Branch:      make(map[string]int),
		Invocations: make(map[string]int),
	}
	schemes := []struct {
		name string
		mut  fuzz.Mutator
	}{
		{"AFL++", &fuzz.ByteMutator{Threads: 4}},
		{"PMRace", fuzz.NewOpMutator(16, 4, 24)},
	}
	for _, scheme := range schemes {
		rng := rand.New(rand.NewSource(cfg.Seed))
		kv := memcached.New()
		env := rt.NewEnv(pmem.New(kv.PoolSize()), rt.Config{})
		th := env.Spawn()
		if err := kv.Setup(th); err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(cfg.Seed, 16, 4)
		corpus := []*workload.Seed{gen.NewSeed(24)}
		for i := 0; i < seedsPerScheme; i++ {
			seed := scheme.mut.Mutate(rng, corpus)
			corpus = append(corpus, seed)
			if len(corpus) > 16 {
				corpus = corpus[1:]
			}
			for _, op := range seed.Ops {
				// Replay through the text parser, exactly as a
				// fuzzing campaign delivers input.
				if err := kv.ExecLine(th, op.String()); err != nil {
					continue // invalid command rejected
				}
			}
		}
		out.Commands[scheme.name] = kv.CmdCounts()
		out.Branch[scheme.name] = env.Coverage().Branch.Count()
		total := 0
		for _, n := range kv.CmdCounts() {
			total += n
		}
		out.Invocations[scheme.name] = total
	}
	return out, nil
}

// String renders the table in the paper's layout.
func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4: the code coverage of memcached-pmem commands\n")
	b.WriteString(fmt.Sprintf("%-8s", "Scheme"))
	for _, class := range workload.Classes() {
		b.WriteString(fmt.Sprintf(" %8s", class))
	}
	b.WriteString(fmt.Sprintf(" %8s %8s\n", "Total", "Branch"))
	for _, scheme := range []string{"AFL++", "PMRace"} {
		b.WriteString(fmt.Sprintf("%-8s", scheme))
		for _, class := range workload.Classes() {
			b.WriteString(fmt.Sprintf(" %8d", r.Commands[scheme][class]))
		}
		b.WriteString(fmt.Sprintf(" %8d %8d\n", r.Invocations[scheme], r.Branch[scheme]))
	}
	return b.String()
}
