package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// Figure10Row measures input-generation throughput for one (system,
// generator) pair with and without in-memory pool checkpoints (paper §6.5,
// Figure 10). The four index targets pay mini-PMDK's whole-pool formatting
// on every execution unless checkpoints are enabled; memcached maps its pool
// libpmem-style with near-zero initialization, so checkpoints do not help it
// — the paper recommends disabling them there.
type Figure10Row struct {
	System    string
	Generator string
	// WithCP and WithoutCP are executions per second.
	WithCP    float64
	WithoutCP float64
}

// Speedup returns WithCP/WithoutCP.
func (r Figure10Row) Speedup() float64 {
	if r.WithoutCP == 0 {
		return 0
	}
	return r.WithCP / r.WithoutCP
}

// RunFigure10 measures the fuzzing (input-generation) speed. Input
// generation is decoupled from interleaving exploration (paper §4.5), so
// executions run without scheduling or statistics collection.
func RunFigure10(cfg Config) ([]Figure10Row, error) {
	cfg = cfg.withDefaults()
	execs := cfg.ExecsPerTarget
	if execs < 10 {
		execs = 10
	}
	gens := []struct {
		name string
		mut  fuzz.Mutator
	}{
		{"PMRace", fuzz.NewOpMutator(16, 4, 24)},
		{"AFL++", &fuzz.ByteMutator{Threads: 4}},
	}
	var rows []Figure10Row
	for _, name := range Systems() {
		factory := factoryFor(name)
		for _, gen := range gens {
			row := Figure10Row{System: displayNames[name], Generator: gen.name}
			for _, useCP := range []bool{true, false} {
				rate, err := measureRate(factory, gen.mut, cfg.Seed, execs, useCP)
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 10 %s/%s: %w", name, gen.name, err)
				}
				if useCP {
					row.WithCP = rate
				} else {
					row.WithoutCP = rate
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func factoryFor(name string) targets.Factory {
	return func() targets.Target {
		t, err := targets.New(name)
		if err != nil {
			panic(err)
		}
		return t
	}
}

func measureRate(factory targets.Factory, mut fuzz.Mutator, seed int64, execs int, useCP bool) (float64, error) {
	x := fuzz.NewExecutor(factory, fuzz.ExecOptions{
		UseCheckpoints: useCP,
		CollectStats:   false,
		HangTimeout:    50 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(seed))
	gen := workload.NewGenerator(seed, 16, 4)
	corpus := []*workload.Seed{gen.NewSeed(24)}
	start := time.Now()
	for i := 0; i < execs; i++ {
		s := mut.Mutate(rng, corpus)
		corpus = append(corpus, s)
		if len(corpus) > 8 {
			corpus = corpus[1:]
		}
		if _, err := x.Run(s, sched.None{}); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(execs) / elapsed.Seconds(), nil
}

// Figure10String renders the rows.
func Figure10String(rows []Figure10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: the impact of checkpoints (CP) on fuzzing speed (execs/s)\n")
	b.WriteString(fmt.Sprintf("%-16s %-8s %10s %10s %8s\n", "System", "Gen", "with CP", "w/o CP", "speedup"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-16s %-8s %10.1f %10.1f %7.2fx\n",
			r.System, r.Generator, r.WithCP, r.WithoutCP, r.Speedup()))
	}
	return b.String()
}
