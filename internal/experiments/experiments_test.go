package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/taint"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/fuzz"
)

func TestSystemsAndDisplayNames(t *testing.T) {
	if len(Systems()) != 5 {
		t.Fatalf("systems = %v", Systems())
	}
	for _, s := range Systems() {
		if displayNames[s] == "" {
			t.Fatalf("missing display name for %s", s)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ExecsPerTarget == 0 || c.Duration == 0 || c.Workers == 0 || c.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	if Quick().ExecsPerTarget >= Full().ExecsPerTarget {
		t.Fatalf("quick must be smaller than full")
	}
}

func TestExtraWhitelist(t *testing.T) {
	if len(extraWhitelist("fastfair")) == 0 {
		t.Fatalf("fastfair must contribute whitelist entries")
	}
	if len(extraWhitelist("memcached")) == 0 {
		t.Fatalf("memcached must contribute whitelist entries")
	}
	if len(extraWhitelist("pclht")) != 0 {
		t.Fatalf("pclht has no extra whitelist")
	}
	if extraWhitelist("unknown") != nil {
		t.Fatalf("unknown target must yield nil")
	}
}

func TestRunTable4Shape(t *testing.T) {
	res, err := RunTable4(Quick())
	if err != nil {
		t.Fatalf("table 4: %v", err)
	}
	afl, pmr := res.Commands["AFL++"], res.Commands["PMRace"]
	if afl["Error"] == 0 {
		t.Errorf("AFL++ byte mutator must produce Error commands, got %v", afl)
	}
	if pmr["Error"] != 0 {
		t.Errorf("PMRace operation mutator must produce no Error commands, got %v", pmr)
	}
	if pmr["Update*"] == 0 || afl["Update*"] == 0 {
		t.Errorf("both schemes must exercise updates: %v vs %v", pmr, afl)
	}
	out := res.String()
	for _, want := range []string{"AFL++", "PMRace", "Get*", "Error"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	cfg := Quick()
	cfg.ExecsPerTarget = 12
	rows, err := RunFigure10(cfg)
	if err != nil {
		t.Fatalf("figure 10: %v", err)
	}
	if len(rows) != 10 { // 5 systems x 2 generators
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape: checkpoints speed up at least one pmdk-based target and do
	// not speed up memcached meaningfully.
	pmdkFaster := false
	for _, r := range rows {
		if r.System != "memcached-pmem" && r.Speedup() > 1.2 {
			pmdkFaster = true
		}
	}
	if !pmdkFaster {
		t.Errorf("checkpoints should speed up pool-formatted targets: %+v", rows)
	}
	out := Figure10String(rows)
	if !strings.Contains(out, "speedup") {
		t.Errorf("rendering wrong:\n%s", out)
	}
}

func TestBugDetectionQuickPCLHT(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	// Single-target slice of the Table 2 pipeline, asserting the
	// paper-shaped outcome for P-CLHT.
	cfg := Quick()
	cfg.ExecsPerTarget = 40
	res, err := FuzzTarget("pclht", cfg, fuzz.ModePMAware, nil)
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	kinds := map[core.Kind]bool{}
	for _, b := range res.Bugs {
		kinds[b.Kind] = true
	}
	if !kinds[core.KindSync] {
		t.Errorf("P-CLHT sync bug missing: %+v", res.Bugs)
	}
	if !kinds[core.KindIntra] {
		t.Errorf("P-CLHT intra bug missing: %+v", res.Bugs)
	}
}

func TestFigure8QuickSingleTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	cfg := Quick()
	cfg.ExecsPerTarget = 16
	res, err := FuzzTarget("memcached", cfg, fuzz.ModePMAware, nil)
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if len(res.FirstInterTimes) == 0 {
		t.Errorf("memcached should produce inter-inconsistency detections quickly")
	}
	s := Figure8Series{System: "m", Scheme: "PMRace", Times: res.FirstInterTimes, Execs: res.Execs}
	if _, ok := s.FirstHit(); !ok {
		t.Errorf("first hit must exist")
	}
	out := Figure8String([]Figure8Series{s})
	if !strings.Contains(out, "first=") {
		t.Errorf("rendering wrong:\n%s", out)
	}
}

func TestFigure8SeriesFirstHitEmpty(t *testing.T) {
	s := Figure8Series{}
	if _, ok := s.FirstHit(); ok {
		t.Fatalf("empty series has no first hit")
	}
	if !strings.Contains(Figure8String([]Figure8Series{s}), "none") {
		t.Fatalf("empty series must render as none")
	}
}

// synthetic constructs a BugDetection with hand-built results, exercising the
// table derivations without fuzzing.
func synthetic() *BugDetection {
	bd := &BugDetection{Config: Quick(), Results: map[string]*fuzz.Result{}}
	for _, name := range Systems() {
		db := core.NewDB()
		res := &fuzz.Result{Target: name, DB: db}
		bd.Results[name] = res
	}
	// P-CLHT: one inter bug, one validated FP, one sync bug, one other.
	db := bd.Results["pclht"].DB
	j1, _ := db.MergeInconsistency(&core.Inconsistency{Kind: core.KindInter, Count: 1})
	j1.Status = core.StatusBug
	j2, _ := db.MergeInconsistency(&core.Inconsistency{
		Kind: core.KindInter, Count: 1, StoreSite: 5,
		Event: taintEvent(9),
	})
	j2.Status = core.StatusValidatedFP
	js, _ := db.MergeSync(&core.SyncInconsistency{Var: core.SyncVar{Name: "bucket-lock"}, Site: 3, Count: 1})
	js.Status = core.StatusBug
	db.AddOther(core.OtherFinding{Kind: "hang", Site: 1})
	for name := range bd.Results {
		bd.Results[name].Counts = bd.Results[name].DB.Tally()
		bd.Results[name].Bugs = bd.Results[name].DB.UniqueBugs()
	}
	return bd
}

func taintEvent(writeSite uint32) taint.Event {
	return taint.Event{WriteSite: writeSite, ReadSite: writeSite + 1, Writer: 1, Reader: 2}
}

func TestTable5FromSyntheticResults(t *testing.T) {
	bd := synthetic()
	rows := bd.Table5()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].System != "P-CLHT" || rows[0].Inter != 1 || rows[0].Sync != 1 || rows[0].Other != 1 {
		t.Fatalf("pclht row = %+v", rows[0])
	}
	if rows[1].Total != 0 {
		t.Fatalf("clevel must be empty: %+v", rows[1])
	}
	out := bd.Table5String()
	if !strings.Contains(out, "P-CLHT") || !strings.Contains(out, "Total") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestTable3FromSyntheticResults(t *testing.T) {
	bd := synthetic()
	rows := bd.Table3()
	if rows[0].Inter != 2 || rows[0].ValidatedFP != 1 || rows[0].InterBugs != 1 {
		t.Fatalf("pclht table3 row = %+v", rows[0])
	}
	if rows[0].Annotations != 4 {
		t.Fatalf("pclht annotations = %d", rows[0].Annotations)
	}
	out := bd.Table3String()
	if !strings.Contains(out, "Inter-Cand") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	bd := synthetic()
	out := bd.Table2()
	for _, want := range []string{"P-CLHT", "Sync", "bucket-lock", "hang"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9StringRendering(t *testing.T) {
	out := Figure9String([]Figure9Series{{Variant: "PMRace", Branch: 10, Alias: 20}})
	if !strings.Contains(out, "PMRace") || !strings.Contains(out, "alias=20") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestFigure10RowSpeedup(t *testing.T) {
	r := Figure10Row{WithCP: 20, WithoutCP: 10}
	if r.Speedup() != 2 {
		t.Fatalf("speedup = %f", r.Speedup())
	}
	if (Figure10Row{}).Speedup() != 0 {
		t.Fatalf("zero row speedup must be 0")
	}
}

func TestCSVWriters(t *testing.T) {
	dir := t.TempDir()
	if err := Figure8CSV(dir, []Figure8Series{{System: "s", Scheme: "PMRace", Times: []time.Duration{time.Millisecond}}}); err != nil {
		t.Fatalf("figure8 csv: %v", err)
	}
	if err := Figure9CSV(dir, []Figure9Series{{Variant: "PMRace", Timeline: []fuzz.CoverPoint{{T: time.Second, Branch: 1, Alias: 2}}}}); err != nil {
		t.Fatalf("figure9 csv: %v", err)
	}
	if err := Figure10CSV(dir, []Figure10Row{{System: "s", Generator: "g", WithCP: 2, WithoutCP: 1}}); err != nil {
		t.Fatalf("figure10 csv: %v", err)
	}
	for _, f := range []string{"figure8.csv", "figure9.csv", "figure10.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil || len(data) == 0 {
			t.Fatalf("%s: %v (%d bytes)", f, err, len(data))
		}
	}
}
