package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// The CSV writers export the figure series in plottable form, one file per
// figure, mirroring the data behind the paper's plots.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// Figure8CSV writes one row per detection event: system, scheme, elapsed
// seconds (the scatter points of the paper's Figure 8).
func Figure8CSV(dir string, series []Figure8Series) error {
	var rows [][]string
	for _, s := range series {
		for _, t := range s.Times {
			rows = append(rows, []string{s.System, s.Scheme, fmt.Sprintf("%.6f", t.Seconds())})
		}
	}
	return writeCSV(dir, "figure8.csv", []string{"system", "scheme", "seconds"}, rows)
}

// Figure9CSV writes the coverage timeline of each variant (the curves of the
// paper's Figure 9).
func Figure9CSV(dir string, series []Figure9Series) error {
	var rows [][]string
	for _, s := range series {
		for _, p := range s.Timeline {
			rows = append(rows, []string{
				s.Variant,
				fmt.Sprintf("%.6f", p.T.Seconds()),
				fmt.Sprintf("%d", p.Branch),
				fmt.Sprintf("%d", p.Alias),
			})
		}
	}
	return writeCSV(dir, "figure9.csv", []string{"variant", "seconds", "branch", "alias"}, rows)
}

// Figure10CSV writes the throughput rows (the bars of the paper's
// Figure 10).
func Figure10CSV(dir string, rows10 []Figure10Row) error {
	var rows [][]string
	for _, r := range rows10 {
		rows = append(rows, []string{
			r.System, r.Generator,
			fmt.Sprintf("%.2f", r.WithCP),
			fmt.Sprintf("%.2f", r.WithoutCP),
			fmt.Sprintf("%.3f", r.Speedup()),
		})
	}
	return writeCSV(dir, "figure10.csv", []string{"system", "generator", "with_cp", "without_cp", "speedup"}, rows)
}
