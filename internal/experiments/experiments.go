// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) against the Go reproduction:
//
//	Table 2 / Table 5 — unique bugs per system and type
//	Table 3 / Table 6 — inconsistencies, false positives, annotations
//	Table 4           — memcached command coverage, AFL++ vs PMRace mutator
//	Figure 8          — time to find PM Inter-thread Inconsistencies,
//	                    PMRace vs random delay injection
//	Figure 9          — runtime-coverage with and without the interleaving
//	                    and seed exploration tiers (P-CLHT)
//	Figure 10         — fuzzing speed with and without in-memory checkpoints
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// a 26-core Optane server); the comparisons the paper draws — who wins,
// which systems produce false positives, where checkpoints help — are the
// reproduction targets. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"

	// Register all evaluated systems.
	_ "github.com/pmrace-go/pmrace/internal/targets/cceh"
	_ "github.com/pmrace-go/pmrace/internal/targets/clevel"
	_ "github.com/pmrace-go/pmrace/internal/targets/fastfair"
	_ "github.com/pmrace-go/pmrace/internal/targets/memcached"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclht"
)

// Systems lists the evaluated targets in the paper's presentation order.
func Systems() []string {
	return []string{"pclht", "clevel", "cceh", "fastfair", "memcached"}
}

// displayNames maps registry names to the paper's system names.
var displayNames = map[string]string{
	"pclht":     "P-CLHT",
	"clevel":    "clevel hashing",
	"cceh":      "CCEH",
	"fastfair":  "FAST-FAIR",
	"memcached": "memcached-pmem",
}

// Config scales the experiment budgets.
type Config struct {
	// ExecsPerTarget is the fuzzing budget (executions) per system.
	ExecsPerTarget int
	// Duration caps each fuzzing run's wall clock.
	Duration time.Duration
	// Workers is the number of concurrent fuzzing workers.
	Workers int
	// Seed seeds all randomness.
	Seed int64
}

// Quick returns a configuration small enough for CI tests.
func Quick() Config {
	return Config{ExecsPerTarget: 24, Duration: 60 * time.Second, Workers: 2, Seed: 1}
}

// Full returns the configuration used to produce EXPERIMENTS.md. Two
// fuzzing workers keep goroutine counts sane on small machines — worker
// processes only pay off with real cores (the paper uses 13 on 52 threads).
func Full() Config {
	return Config{ExecsPerTarget: 240, Duration: 10 * time.Minute, Workers: 2, Seed: 1}
}

func (c Config) withDefaults() Config {
	if c.ExecsPerTarget <= 0 {
		c.ExecsPerTarget = 60
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// whitelister is the optional interface targets implement to contribute
// benign patterns (FAST-FAIR's lazy repair, memcached's checksums).
type whitelister interface{ Whitelist() []string }

// extraWhitelist returns the target-specific whitelist entries.
func extraWhitelist(name string) []string {
	tgt, err := targets.New(name)
	if err != nil {
		return nil
	}
	if w, ok := tgt.(whitelister); ok {
		return w.Whitelist()
	}
	return nil
}

// FuzzTarget runs one fuzzing campaign batch against a system.
func FuzzTarget(name string, cfg Config, mode fuzz.ExploreMode, mutate func(*fuzz.Options)) (*fuzz.Result, error) {
	cfg = cfg.withDefaults()
	opts := fuzz.Options{
		Mode:           mode,
		MaxExecs:       cfg.ExecsPerTarget,
		Duration:       cfg.Duration,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
		ExtraWhitelist: extraWhitelist(name),
		// More sync-point entries per seed than the engine default: the
		// split/resize windows of the tree targets sit behind cooler
		// addresses.
		MaxInterleavingsPerSeed: 12,
		// Generous hang bound: on few cores, many concurrently stalled
		// campaigns can starve a legitimate lock holder.
		HangTimeout: 150 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	fz, err := fuzz.New(name, opts)
	if err != nil {
		return nil, err
	}
	return fz.Run()
}

// --- Tables 2, 3, 5 and 6 ---

// BugDetection is the shared result of the bug-detection campaigns, from
// which Tables 2, 3, 5 and 6 are all derived.
type BugDetection struct {
	Config  Config
	Results map[string]*fuzz.Result
}

// RunBugDetection fuzzes every system with the PM-aware exploration.
func RunBugDetection(cfg Config) (*BugDetection, error) {
	cfg = cfg.withDefaults()
	bd := &BugDetection{Config: cfg, Results: make(map[string]*fuzz.Result)}
	for _, name := range Systems() {
		res, err := FuzzTarget(name, cfg, fuzz.ModePMAware, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fuzzing %s: %w", name, err)
		}
		bd.Results[name] = res
	}
	return bd, nil
}

// Table2 renders the per-bug listing (paper Table 2): every unique bug with
// its type, grouping site and description, plus the "Other" findings.
func (bd *BugDetection) Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: unique bugs found by PMRace\n")
	b.WriteString(fmt.Sprintf("%-16s %-6s %-10s %-24s %s\n", "System", "#", "Type", "Site", "Description"))
	n := 0
	for _, name := range Systems() {
		res := bd.Results[name]
		for _, bug := range res.Bugs {
			n++
			loc := site.Lookup(bug.GroupSite).String()
			desc := bug.Summary
			if bug.Kind == core.KindSync {
				desc = fmt.Sprintf("persistent %q not re-initialized after restart (hang)", bug.VarName)
			}
			b.WriteString(fmt.Sprintf("%-16s %-6d %-10s %-24s %s\n", displayNames[name], n, bug.Kind, loc, desc))
		}
		for _, other := range res.DB.Others() {
			n++
			b.WriteString(fmt.Sprintf("%-16s %-6d %-10s %-24s %s\n", displayNames[name], n, "Other",
				site.Lookup(other.Site).String(), other.Kind+": "+other.Description))
		}
	}
	return b.String()
}

// Table5Row is the summarized bug matrix (paper Table 5).
type Table5Row struct {
	System string
	Inter  int
	Sync   int
	Intra  int
	Other  int
	Total  int
}

// Table5 computes the summary matrix.
func (bd *BugDetection) Table5() []Table5Row {
	var rows []Table5Row
	for _, name := range Systems() {
		res := bd.Results[name]
		row := Table5Row{System: displayNames[name]}
		for _, bug := range res.Bugs {
			switch bug.Kind {
			case core.KindInter:
				row.Inter++
			case core.KindSync:
				row.Sync++
			case core.KindIntra:
				row.Intra++
			}
		}
		row.Other = len(res.DB.Others())
		row.Total = row.Inter + row.Sync + row.Intra + row.Other
		rows = append(rows, row)
	}
	return rows
}

// Table5String renders Table 5.
func (bd *BugDetection) Table5String() string {
	var b strings.Builder
	b.WriteString("Table 5: the number of unique bugs found by PMRace\n")
	b.WriteString(fmt.Sprintf("%-16s %6s %6s %6s %6s %6s\n", "System", "Inter", "Sync", "Intra", "Other", "Total"))
	var tot Table5Row
	for _, r := range bd.Table5() {
		b.WriteString(fmt.Sprintf("%-16s %6d %6d %6d %6d %6d\n", r.System, r.Inter, r.Sync, r.Intra, r.Other, r.Total))
		tot.Inter += r.Inter
		tot.Sync += r.Sync
		tot.Intra += r.Intra
		tot.Other += r.Other
		tot.Total += r.Total
	}
	b.WriteString(fmt.Sprintf("%-16s %6d %6d %6d %6d %6d\n", "Total", tot.Inter, tot.Sync, tot.Intra, tot.Other, tot.Total))
	return b.String()
}

// Table3Row is one system's detection/false-positive aggregate (Tables 3/6).
type Table3Row struct {
	System        string
	InterCand     int
	Inter         int
	ValidatedFP   int
	WhitelistedFP int
	InterBugs     int
	Annotations   int
	Sync          int
	SyncFP        int
	SyncBugs      int
}

// Table3 computes the detection aggregates.
func (bd *BugDetection) Table3() []Table3Row {
	var rows []Table3Row
	for _, name := range Systems() {
		res := bd.Results[name]
		tgt, _ := targets.New(name)
		c := res.Counts
		rows = append(rows, Table3Row{
			System:        displayNames[name],
			InterCand:     c.InterCandidates,
			Inter:         c.Inter,
			ValidatedFP:   c.InterValidated,
			WhitelistedFP: c.InterWhitelist,
			InterBugs:     c.InterBugs,
			Annotations:   tgt.Annotations(),
			Sync:          c.Sync,
			SyncFP:        c.SyncValidated,
			SyncBugs:      c.SyncBugs,
		})
	}
	return rows
}

// Table3String renders Tables 3/6.
func (bd *BugDetection) Table3String() string {
	var b strings.Builder
	b.WriteString("Table 3: PM concurrency bug detection results\n")
	b.WriteString(fmt.Sprintf("%-16s %10s %6s %12s %14s %5s | %10s %5s %8s %5s\n",
		"System", "Inter-Cand", "Inter", "ValidatedFP", "WhitelistedFP", "Bug", "Annotation", "Sync", "SyncFP", "Bug"))
	var tot Table3Row
	for _, r := range bd.Table3() {
		b.WriteString(fmt.Sprintf("%-16s %10d %6d %12d %14d %5d | %10d %5d %8d %5d\n",
			r.System, r.InterCand, r.Inter, r.ValidatedFP, r.WhitelistedFP, r.InterBugs,
			r.Annotations, r.Sync, r.SyncFP, r.SyncBugs))
		tot.InterCand += r.InterCand
		tot.Inter += r.Inter
		tot.ValidatedFP += r.ValidatedFP
		tot.WhitelistedFP += r.WhitelistedFP
		tot.InterBugs += r.InterBugs
		tot.Annotations += r.Annotations
		tot.Sync += r.Sync
		tot.SyncFP += r.SyncFP
		tot.SyncBugs += r.SyncBugs
	}
	b.WriteString(fmt.Sprintf("%-16s %10d %6d %12d %14d %5d | %10d %5d %8d %5d\n",
		"Total", tot.InterCand, tot.Inter, tot.ValidatedFP, tot.WhitelistedFP, tot.InterBugs,
		tot.Annotations, tot.Sync, tot.SyncFP, tot.SyncBugs))
	return b.String()
}

// --- Figure 8 ---

// Figure8Series is the detection-time series of one (system, scheme) pair.
type Figure8Series struct {
	System string
	Scheme string
	// Times are the elapsed times of executions that detected at least
	// one PM Inter-thread Inconsistency (each is one point in Figure 8).
	Times []time.Duration
	// Execs is the total executions of the run.
	Execs int
}

// FirstHit returns the earliest detection time, or 0/false when none.
func (s Figure8Series) FirstHit() (time.Duration, bool) {
	if len(s.Times) == 0 {
		return 0, false
	}
	min := s.Times[0]
	for _, t := range s.Times[1:] {
		if t < min {
			min = t
		}
	}
	return min, true
}

// RunFigure8 compares PMRace's exploration against random delay injection on
// the three systems with PM Interleaving Concurrency Bugs (clevel and CCEH
// are excluded, as in the paper).
func RunFigure8(cfg Config) ([]Figure8Series, error) {
	cfg = cfg.withDefaults()
	var out []Figure8Series
	for _, name := range []string{"pclht", "fastfair", "memcached"} {
		for _, mode := range []fuzz.ExploreMode{fuzz.ModePMAware, fuzz.ModeDelayInj} {
			res, err := FuzzTarget(name, cfg, mode, nil)
			if err != nil {
				return nil, err
			}
			times := append([]time.Duration(nil), res.FirstInterTimes...)
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			out = append(out, Figure8Series{
				System: displayNames[name],
				Scheme: mode.String(),
				Times:  times,
				Execs:  res.Execs,
			})
		}
	}
	return out, nil
}

// Figure8String renders the series.
func Figure8String(series []Figure8Series) string {
	var b strings.Builder
	b.WriteString("Figure 8: time to identify PM Inter-thread Inconsistency\n")
	for _, s := range series {
		first := "none"
		if t, ok := s.FirstHit(); ok {
			first = t.Round(time.Millisecond).String()
		}
		b.WriteString(fmt.Sprintf("%-16s %-9s first=%-10s hits=%d/%d execs\n",
			s.System, s.Scheme, first, len(s.Times), s.Execs))
	}
	return b.String()
}

// --- Figure 9 ---

// Figure9Series is one exploration variant's coverage timeline.
type Figure9Series struct {
	Variant  string
	Timeline []fuzz.CoverPoint
	Branch   int
	Alias    int
}

// RunFigure9 measures the P-CLHT runtime-coverage tradeoff for the full
// fuzzer, without interleaving-tier exploration and without seed-tier
// exploration (single worker, as in the paper's case study).
func RunFigure9(cfg Config) ([]Figure9Series, error) {
	cfg = cfg.withDefaults()
	variants := []struct {
		name   string
		mutate func(*fuzz.Options)
	}{
		{"PMRace", func(*fuzz.Options) {}},
		{"w/o IE", func(o *fuzz.Options) { o.DisableInterleavingTier = true }},
		{"w/o SE", func(o *fuzz.Options) { o.DisableSeedTier = true }},
	}
	var out []Figure9Series
	for _, v := range variants {
		mutate := v.mutate
		res, err := FuzzTarget("pclht", cfg, fuzz.ModePMAware, func(o *fuzz.Options) {
			o.Workers = 1
			mutate(o)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure9Series{
			Variant:  v.name,
			Timeline: res.Timeline,
			Branch:   res.BranchCov,
			Alias:    res.AliasCov,
		})
	}
	return out, nil
}

// Figure9String renders the final coverages and curve lengths.
func Figure9String(series []Figure9Series) string {
	var b strings.Builder
	b.WriteString("Figure 9: runtime-coverage of PMRace with P-CLHT\n")
	for _, s := range series {
		b.WriteString(fmt.Sprintf("%-8s branch=%-6d alias=%-6d points=%d\n",
			s.Variant, s.Branch, s.Alias, len(s.Timeline)))
	}
	return b.String()
}
