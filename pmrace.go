// Package pmrace is a Go reproduction of PMRace — "Efficiently Detecting
// Concurrency Bugs in Persistent Memory Programs" (Chen, Hua, Zhang, Ding;
// ASPLOS 2022) — the first PM-specific concurrency bug detector.
//
// PMRace finds two new classes of persistent-memory concurrency bugs:
//
//   - PM Inter-thread Inconsistency: one thread makes durable side effects
//     (PM writes) based on data another thread wrote but has not yet flushed
//     to the persistence domain; a crash in the window loses the dependency
//     and leaves PM inconsistent (data loss, corrupted indexes).
//   - PM Synchronization Inconsistency: synchronization variables (locks)
//     persisted to PM are restored after a crash while the threads that held
//     them are not, hanging post-recovery execution.
//
// The detector drives PM-aware coverage-guided fuzzing: a priority queue of
// shared PM addresses selects sync points; conditional waits stall readers
// until a writer leaves data dirty; shadow-memory taint analysis confirms
// durable side effects; and a post-failure validation stage replays each
// detected inconsistency's adversarial crash image through the target's
// recovery code to filter false positives.
//
// Everything the original built on LLVM instrumentation and Optane hardware
// is reproduced in-process: a simulated persistent memory pool with
// cache-line flush semantics (CLWB/SFENCE/non-temporal stores), an explicit
// hook runtime standing in for compiler instrumentation, and Go
// re-implementations of the five evaluated PM systems with the paper's bug
// inventory seeded at the corresponding algorithmic locations. See DESIGN.md
// for the substitution table and EXPERIMENTS.md for reproduced evaluation
// results.
//
// # Quick start
//
// A fuzzing run is a Campaign: it starts immediately, streams typed events
// (executions, accepted seeds, inconsistencies, validation verdicts,
// confirmed bugs) while in flight, answers live statistics snapshots, and
// stops within one execution when its context is cancelled:
//
//	c, err := pmrace.NewCampaign(ctx, "pclht",
//		pmrace.WithWorkers(8),
//		pmrace.WithBudget(500, 2*time.Minute))
//	if err != nil { ... }
//	for ev := range c.Events() {
//		if bug, ok := ev.(*pmrace.BugConfirmed); ok {
//			fmt.Println("bug:", bug.Summary)
//		}
//	}
//	res, _ := c.Wait()
//
// # Migrating from Fuzz
//
// The old blocking pmrace.Fuzz(target, opts) call has been removed; replace
//
//	res, err := pmrace.Fuzz("pclht", pmrace.Options{MaxExecs: 100, Workers: 8})
//
// with
//
//	c, err := pmrace.NewCampaign(ctx, "pclht",
//		pmrace.WithBudget(100, 0), pmrace.WithWorkers(8))
//	if err != nil { ... }
//	res, err := c.Wait()
//
// and attach pmrace.WithJSONTrace / pmrace.WithProgress / pmrace.WithSink
// for observability the old API could not offer. Campaigns can also run as
// a service: cmd/pmraced schedules many concurrent campaigns over a shared
// worker budget behind a versioned REST API (package api defines the wire
// contract, package client consumes it).
//
// # Testing your own PM data structure
//
// Implement Target against the hook runtime (every PM access goes through a
// Thread handle), register it, and fuzz it:
//
//	pmrace.RegisterTarget("mystruct", func() pmrace.Target { return NewMyStruct() })
//	c, _ := pmrace.NewCampaign(ctx, "mystruct")
//	res, _ := c.Wait()
package pmrace

import (
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"

	// The five evaluated PM systems register themselves, plus the
	// pminstr-generated P-CLHT shadow (target pclht-gen).
	_ "github.com/pmrace-go/pmrace/internal/targets/cceh"
	_ "github.com/pmrace-go/pmrace/internal/targets/clevel"
	_ "github.com/pmrace-go/pmrace/internal/targets/fastfair"
	_ "github.com/pmrace-go/pmrace/internal/targets/memcached"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclht"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclhtgen"
	_ "github.com/pmrace-go/pmrace/internal/targets/pmwal"
)

// Core fuzzing API.
type (
	// Options configure a fuzzing run; the zero value selects the
	// evaluation defaults (4 driver threads, PM-aware exploration,
	// in-memory checkpoints).
	Options = fuzz.Options
	// Result aggregates a fuzzing run: unique bugs, judged
	// inconsistencies, coverage, detection-time series.
	Result = fuzz.Result
	// ExploreMode selects PM-aware exploration, random delay injection,
	// or no scheduling.
	ExploreMode = fuzz.ExploreMode
	// Mutator generates new seeds from a corpus.
	Mutator = fuzz.Mutator
	// AliasHint is one statically inferred load/store site pair from
	// `pmvet -alias`, used to prioritize the interleaving queue.
	AliasHint = fuzz.AliasHint
)

// LoadAliasHints reads a pmvet alias-pair report (`pmvet -alias out.json`)
// into scheduler hints for WithAliasHints.
func LoadAliasHints(path string) ([]AliasHint, error) { return fuzz.LoadAliasHints(path) }

// Exploration modes.
const (
	ModePMAware  = fuzz.ModePMAware
	ModeDelayInj = fuzz.ModeDelayInj
	ModeNone     = fuzz.ModeNone
)

// Detection results.
type (
	// UniqueBug is the paper's unit of bug counting: inconsistencies
	// grouped by the store instruction that produced the non-persisted
	// data, or synchronization inconsistencies grouped by variable.
	UniqueBug = core.UniqueBug
	// Inconsistency is one confirmed durable side effect based on
	// non-persisted data.
	Inconsistency = core.Inconsistency
	// SyncInconsistency is one persisted-synchronization-variable update.
	SyncInconsistency = core.SyncInconsistency
	// SyncVar is a pm_sync_var_hint-style annotation.
	SyncVar = core.SyncVar
	// Kind classifies findings (inter/intra/sync, candidates).
	Kind = core.Kind
	// Status is the post-failure verdict (bug / validated FP /
	// whitelisted FP).
	Status = core.Status
	// Whitelist holds developer-specified benign patterns.
	Whitelist = core.Whitelist
)

// Finding kinds and verdicts.
const (
	KindInter = core.KindInter
	KindIntra = core.KindIntra
	KindSync  = core.KindSync

	StatusPending       = core.StatusPending
	StatusBug           = core.StatusBug
	StatusValidatedFP   = core.StatusValidatedFP
	StatusWhitelistedFP = core.StatusWhitelistedFP
)

// Instrumentation runtime, for writing targets.
type (
	// Target is a PM system under test.
	Target = targets.Target
	// Factory creates fresh target instances per campaign.
	Factory = targets.Factory
	// Env is one instrumented execution environment.
	Env = rt.Env
	// Thread is the per-thread hook handle; every PM access of an
	// instrumented program goes through it.
	Thread = rt.Thread
	// Pool is the simulated persistent memory pool.
	Pool = pmem.Pool
	// Op is one key-value operation of the workload model.
	Op = workload.Op
	// Seed is a fuzzer input: operations distributed over threads.
	Seed = workload.Seed
)

// RegisterTarget adds a PM system to the registry so campaigns can run it.
func RegisterTarget(name string, factory Factory) { targets.Register(name, factory) }

// Targets lists the registered PM systems.
func Targets() []string { return targets.Names() }

// NewPool creates a simulated PM pool of the given size.
func NewPool(size uint64) *Pool { return pmem.New(size) }

// PoolFromImage re-maps a crash image, as recovery does after a restart.
func PoolFromImage(img []byte) *Pool { return pmem.FromImage(img) }

// NewEnv creates an instrumented execution environment over a pool with
// default configuration (no scheduling, detection enabled). Use it to write
// and unit-test instrumented PM code directly.
func NewEnv(pool *Pool) *Env { return rt.NewEnv(pool, rt.Config{}) }

// FormatInconsistency renders a detailed bug report with stack traces.
func FormatInconsistency(j *core.JudgedInconsistency) string {
	return core.FormatInconsistency(j)
}
