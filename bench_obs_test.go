// Microbenchmarks of the observability overheads on the hook hot path: the
// PM access trace ring (tracing on vs. off, single- and multi-threaded) and
// the Prometheus exposition renderer. The trace ring runs inside every
// instrumented load/store when TraceDepth > 0, so its cost directly bounds
// forensic-mode campaign throughput.
//
// Run with:
//
//	go test -bench=Obs -benchmem
//
// TestObsBenchJSON (gated behind PMRACE_BENCH=1) reruns the suite and writes
// BENCH_obs.json for tracking across revisions.
package pmrace_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// newObsThread builds a hook thread with the given trace depth (0 = tracing
// off), mirroring the executor's forensic configuration (TraceDepth 64).
func newObsEnv(traceDepth int) *rt.Env {
	return rt.NewEnv(pmem.New(hotPoolSize), rt.Config{TraceDepth: traceDepth})
}

// BenchmarkObsHookStore64Untraced is the no-tracing contrast case: the same
// instrumented store as BenchmarkHotpathHookStore64.
func BenchmarkObsHookStore64Untraced(b *testing.B) {
	th := newObsEnv(0).Spawn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := pmem.Addr(i%hotAddrWords) * 8
		th.Store64(addr, uint64(i), taint.None, taint.None)
	}
}

// BenchmarkObsHookStore64Traced measures one instrumented store with the
// access trace ring enabled at the executor's depth.
func BenchmarkObsHookStore64Traced(b *testing.B) {
	th := newObsEnv(64).Spawn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := pmem.Addr(i%hotAddrWords) * 8
		th.Store64(addr, uint64(i), taint.None, taint.None)
	}
}

// BenchmarkObsHookLoad64Traced is the load-side analogue over a persisted
// working set (clean-word fast path plus the trace append).
func BenchmarkObsHookLoad64Traced(b *testing.B) {
	th := newObsEnv(64).Spawn()
	for i := 0; i < hotAddrWords; i++ {
		th.Store64(pmem.Addr(i)*8, uint64(i), taint.None, taint.None)
	}
	th.Persist(0, hotAddrWords*8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := pmem.Addr(i%hotAddrWords) * 8
		th.Load64(addr)
	}
}

// BenchmarkObsHookStore64TracedParallel measures the traced store hook under
// goroutine parallelism: 4 hook threads hammering disjoint address ranges,
// the pattern PR 1's lock-free work parallelized and a single-mutex trace
// ring re-serializes.
func BenchmarkObsHookStore64TracedParallel(b *testing.B) {
	const threads = 4
	env := newObsEnv(64)
	ths := make([]*rt.Thread, threads)
	for i := range ths {
		ths[i] = env.Spawn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / threads
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			th := ths[t]
			base := pmem.Addr(t) * (hotPoolSize / threads)
			span := uint64(hotPoolSize / threads / 8)
			for i := 0; i < per; i++ {
				addr := base + pmem.Addr(uint64(i)%span)*8
				th.Store64(addr, uint64(i), taint.None, taint.None)
			}
		}(t)
	}
	wg.Wait()
}

// BenchmarkObsTraceSnapshot measures draining the ring into chronological
// order, the per-detection cost of attaching interleaving evidence.
func BenchmarkObsTraceSnapshot(b *testing.B) {
	env := newObsEnv(64)
	th := env.Spawn()
	for i := 0; i < 512; i++ {
		th.Store64(pmem.Addr(i%64)*8, uint64(i), taint.None, taint.None)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(env.RecentAccesses()) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkObsSpanDisabled measures the span-subsystem cost with tracing
// disabled: Start must be one atomic load plus a branch, End a nil check —
// zero allocations. This is the price every instrumented call site pays in an
// untraced campaign.
func BenchmarkObsSpanDisabled(b *testing.B) {
	tr := obs.NewTracer(nil, 8)
	tr.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(1, obs.SpanExecRun)
		sp.End()
	}
}

// BenchmarkObsSpanSampled measures the steady-state cost of the default
// sampled configuration: every call pays the Sample() atomic, one in 8 pays
// the full span record.
func BenchmarkObsSpanSampled(b *testing.B) {
	tr := obs.NewTracer(obs.NewRegistry(), 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane := -1
		if tr.Sample() {
			lane = 1
		}
		sp := tr.Start(lane, obs.SpanExecRun)
		sp.End()
	}
}

// BenchmarkObsSpanEnabled measures the full span record: clock reads, flight
// ring insert and histogram observe. This is what a sampled execution pays
// per span.
func BenchmarkObsSpanEnabled(b *testing.B) {
	tr := obs.NewTracer(obs.NewRegistry(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(1, obs.SpanExecRun)
		sp.End()
	}
}

// BenchmarkObsFlightSnapshot measures merging a full flight recorder into
// start order — the anomaly-dump / timeline-export path.
func BenchmarkObsFlightSnapshot(b *testing.B) {
	tr := obs.NewTracer(nil, 1)
	for i := 0; i < 8192; i++ {
		sp := tr.Start(1, obs.SpanExecRun)
		sp.End()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tr.Spans()) == 0 {
			b.Fatal("empty recorder")
		}
	}
}

// TestObsBenchJSON regenerates BENCH_obs.json with the tracing-overhead
// numbers. Gated like TestHotpathBenchJSON.
func TestObsBenchJSON(t *testing.T) {
	if os.Getenv("PMRACE_BENCH") != "1" {
		t.Skip("set PMRACE_BENCH=1 to regenerate BENCH_obs.json")
	}
	micro := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"hook_store64_untraced", BenchmarkObsHookStore64Untraced},
		{"hook_store64_traced", BenchmarkObsHookStore64Traced},
		{"hook_load64_traced", BenchmarkObsHookLoad64Traced},
		{"hook_store64_traced_parallel4", BenchmarkObsHookStore64TracedParallel},
		{"trace_snapshot", BenchmarkObsTraceSnapshot},
		{"span_disabled", BenchmarkObsSpanDisabled},
		{"span_sampled_rate8", BenchmarkObsSpanSampled},
		{"span_enabled", BenchmarkObsSpanEnabled},
		{"span_flight_snapshot", BenchmarkObsFlightSnapshot},
	}
	type microResult struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	out := struct {
		Date     string                 `json:"date"`
		Note     string                 `json:"note"`
		Baseline map[string]float64     `json:"baseline_single_mutex_ns"`
		Micro    map[string]microResult `json:"micro"`
	}{
		Date: time.Now().UTC().Format(time.RFC3339),
		Note: "trace ring sharded per-thread (per-shard mutex + atomic global seq ticket), merged by Seq in snapshot; baseline_single_mutex_ns measured on the pre-sharding global-mutex ring on the same host. Hook store/load with tracing improve via the per-Thread cached shard pointer (no modulo/ring indirection per access); the ring-add micro pays ~4ns for the global order ticket (see internal/rt BenchmarkTraceAdd* for the in-binary A/B) but no longer serializes concurrent workers. span_* rows cover the span-tracing subsystem: span_disabled is the per-call-site cost in an untraced campaign (one atomic load, 0 allocs — the PM access hooks are never on the span path at all), span_sampled_rate8 the steady-state default, span_enabled one full span record, span_flight_snapshot the anomaly-dump/export merge of a full 4096-span recorder.",
		Baseline: map[string]float64{
			"hook_store64_untraced":         225.4,
			"hook_store64_traced":           243.2,
			"hook_load64_traced":            231.3,
			"hook_store64_traced_parallel4": 233.0,
			"trace_snapshot":                352.8,
		},
		Micro: make(map[string]microResult),
	}
	for _, m := range micro {
		r := testing.Benchmark(m.fn)
		out.Micro[m.name] = microResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
		t.Logf("%-30s %10.1f ns/op %4d allocs/op", m.name, out.Micro[m.name].NsPerOp, r.AllocsPerOp())
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_obs.json")
}
