package pmrace_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are rare enough in this repo to not need handling.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve walks every markdown file in the repository and
// asserts that each relative link points at a file or directory that
// exists, so renames and deletions cannot silently orphan the docs
// (README → OPERATIONS/DESIGN/EXPERIMENTS cross-references in particular).
func TestDocsLinksResolve(t *testing.T) {
	var checked int
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		// SNIPPETS.md and PAPERS.md carry verbatim excerpts from other
		// repositories and papers; their links point into those trees.
		if path == "SNIPPETS.md" || path == "PAPERS.md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external links and in-page anchors
			}
			// Drop an anchor fragment: DESIGN.md#13-... must resolve the
			// file part.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", path, m[1], resolved, err)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking repository: %v", err)
	}
	if checked == 0 {
		t.Fatal("no relative markdown links found; the checker is not seeing the docs")
	}
	t.Logf("checked %d relative links", checked)
}
