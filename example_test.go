package pmrace_test

import (
	"context"
	"fmt"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// flagThenData is a tiny PM structure with a deliberate PM Inter-thread
// Inconsistency: operations read a shared sequence number that another
// thread may not have flushed yet, and durably log a record derived from it.
type flagThenData struct{}

func (f *flagThenData) Name() string             { return "doc-example" }
func (f *flagThenData) PoolSize() uint64         { return 4 << 10 }
func (f *flagThenData) Annotations() int         { return 0 }
func (f *flagThenData) Setup(*rt.Thread) error   { return nil }
func (f *flagThenData) Recover(*rt.Thread) error { return nil }

func (f *flagThenData) Exec(t *rt.Thread, op workload.Op) error {
	if op.Kind.Mutates() {
		seq, lab := t.Load64(0)                            // may be another thread's dirty write
		t.Store64(0, seq+1, lab, taint.None)               // bump, flush deferred
		t.NTStore64(64+(seq%32)*8, seq+1, lab, taint.None) // durable record
		t.Persist(0, 8)
	} else {
		t.Load64(0)
	}
	return nil
}

// ExampleNewCampaign shows the minimal end-to-end workflow: register a
// target, run a campaign against it, and inspect the unique bugs.
func ExampleNewCampaign() {
	pmrace.RegisterTarget("doc-example", func() pmrace.Target { return &flagThenData{} })
	c, err := pmrace.NewCampaign(context.Background(), "doc-example",
		pmrace.WithBudget(30, 0), pmrace.WithSeed(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := c.Wait()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, bug := range res.Bugs {
		fmt.Println("found a", bug.Kind, "bug")
		break
	}
	// Output:
	// found a Inter bug
}

// ExampleWithProtocolTraffic runs the same campaign shape through the
// memcached text-protocol front-end: seeds are per-connection byte streams
// (pipelined commands, malformed frames, mid-request crash points) parsed
// by internal/wire, and the pmwal target's torn-append bug — unreachable
// from synthetic op vectors, whose values are too short — is exposed by
// the generator's multi-cache-line values.
func ExampleWithProtocolTraffic() {
	c, err := pmrace.NewCampaign(context.Background(), "pmwal",
		pmrace.WithProtocolTraffic(),
		pmrace.WithBudget(60, 0),
		pmrace.WithThreads(4),
		pmrace.WithKeySpace(6),
		pmrace.WithOpsPerSeed(30),
		pmrace.WithSeed(11))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := c.Wait()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Counts.Inter+res.Counts.Intra > 0 {
		fmt.Println("protocol traffic exposed a seeded pmwal inconsistency")
	}
	// Output:
	// protocol traffic exposed a seeded pmwal inconsistency
}
