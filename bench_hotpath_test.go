// Microbenchmarks of the fuzzing executor's hot path: the instrumented
// access hooks, the lock-free coverage bitmap, site-ID resolution and the
// dirty-line checkpoint restore. These are the per-operation costs behind
// the campaign throughput that BenchmarkFuzzThroughput measures end to end.
// Run with:
//
//	go test -bench=Hotpath -benchmem
//
// TestHotpathBenchJSON (gated behind PMRACE_BENCH=1) reruns the suite plus a
// Workers=1/2/4/8 throughput sweep and writes the results to
// BENCH_hotpath.json for tracking across revisions.
package pmrace_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

const (
	hotPoolSize  = 1 << 20 // 1 MiB pool
	hotAddrWords = 1 << 15 // working set: 32Ki words = 256 KiB
)

func newHotThread() *rt.Thread {
	env := rt.NewEnv(pmem.New(hotPoolSize), rt.Config{})
	return env.Spawn()
}

// BenchmarkHotpathHookStore64 measures one instrumented 8-byte store: site
// resolution, alias-pair accessor swap, dirty marking and shadow-label
// update — the cost every PM write in a fuzzed execution pays.
func BenchmarkHotpathHookStore64(b *testing.B) {
	th := newHotThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := pmem.Addr(i%hotAddrWords) * 8
		th.Store64(addr, uint64(i), taint.None, taint.None)
	}
}

// BenchmarkHotpathHookLoad64 is the load-side analogue: metadata and shadow
// inspection plus the dirty-read candidate check.
func BenchmarkHotpathHookLoad64(b *testing.B) {
	th := newHotThread()
	for i := 0; i < hotAddrWords; i++ {
		th.Store64(pmem.Addr(i)*8, uint64(i), taint.None, taint.None)
	}
	// Persist the working set so the loads measure the clean-word fast path,
	// not the dirty-read candidate machinery.
	th.Persist(0, hotAddrWords*8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := pmem.Addr(i%hotAddrWords) * 8
		th.Load64(addr)
	}
}

// BenchmarkHotpathBitmapSet measures the lock-free coverage bitmap's Set on
// a rolling hash stream (mostly new bits early, mostly duplicate bits once
// the map saturates — the steady-state fuzzing mix).
func BenchmarkHotpathBitmapSet(b *testing.B) {
	bm := cover.NewBitmap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(cover.EdgeHash(uint32(i), uint32(i>>3)))
	}
}

// BenchmarkHotpathBitmapMerge measures merging a worker's per-execution
// bitmap into the campaign-global map (one call per execution).
func BenchmarkHotpathBitmapMerge(b *testing.B) {
	global := cover.NewBitmap()
	local := cover.NewBitmap()
	for i := 0; i < 4096; i++ {
		local.Set(cover.EdgeHash(uint32(i), uint32(i*7)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		global.Merge(local)
	}
}

// BenchmarkHotpathRegistryHere measures site resolution through the shared
// registry's lock-free read path (published PC map hit).
func BenchmarkHotpathRegistryHere(b *testing.B) {
	site.Here(0) // warm the registry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site.Here(0)
	}
}

// BenchmarkHotpathSiteCacheHere measures resolution through a per-thread
// direct-mapped PC cache, the path the hooks actually take.
func BenchmarkHotpathSiteCacheHere(b *testing.B) {
	c := site.NewCache()
	c.Here(0) // warm the cache slot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Here(0)
	}
}

// BenchmarkHotpathRestoreDirty measures the dirty-line checkpoint restore:
// the executor's steady state, where each execution dirties a small working
// set of a large pool and Restore copies back only those lines.
func BenchmarkHotpathRestoreDirty(b *testing.B) {
	base := pmem.New(8 << 20)
	snap := base.Snapshot()
	p := pmem.NewFromSnapshot(snap)
	p.Restore(snap) // bind the pool to the snapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < 64; l++ {
			p.Store64(0, 1, pmem.Addr(l)*4096, uint64(i))
		}
		p.Restore(snap)
	}
}

// BenchmarkHotpathRestoreFull is the contrast case: restoring from a
// snapshot the pool is not based on copies the whole image.
func BenchmarkHotpathRestoreFull(b *testing.B) {
	base := pmem.New(8 << 20)
	snapA := base.Snapshot()
	snapB := base.Snapshot()
	p := pmem.NewFromSnapshot(snapA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate snapshots so every restore misses the dirty-line path.
		if i%2 == 0 {
			p.Restore(snapB)
		} else {
			p.Restore(snapA)
		}
	}
}

// hotpathThroughput runs reduced P-CLHT campaigns and returns the median
// execs/sec of three runs. The budget is long enough (600 executions) for
// the campaign to drain its interleaving queue more than once: shorter runs
// measure only the seed tier and never see the steady state where
// equivalence pruning pays for itself. Campaign throughput is scheduling-
// noisy on a shared box, so a median of three is reported rather than a
// single sample.
func hotpathThroughput(workers int) (float64, error) {
	var samples []float64
	for rep := 0; rep < 3; rep++ {
		fz, err := fuzz.New("pclht", fuzz.Options{
			MaxExecs: 600,
			Duration: 240 * time.Second,
			Workers:  workers,
			Seed:     1,
		})
		if err != nil {
			return 0, err
		}
		res, err := fz.Run()
		if err != nil {
			return 0, err
		}
		samples = append(samples, res.ExecsPerSec)
	}
	sort.Float64s(samples)
	return samples[1], nil
}

// TestHotpathBenchJSON regenerates BENCH_hotpath.json: the microbenchmark
// numbers above plus the Workers=1/2/4/8 campaign throughput sweep. Gated
// because it runs the full sweep (~15s).
func TestHotpathBenchJSON(t *testing.T) {
	if os.Getenv("PMRACE_BENCH") != "1" {
		t.Skip("set PMRACE_BENCH=1 to regenerate BENCH_hotpath.json")
	}
	micro := map[string]func(*testing.B){
		"hook_store64":    BenchmarkHotpathHookStore64,
		"hook_load64":     BenchmarkHotpathHookLoad64,
		"bitmap_set":      BenchmarkHotpathBitmapSet,
		"bitmap_merge":    BenchmarkHotpathBitmapMerge,
		"registry_here":   BenchmarkHotpathRegistryHere,
		"site_cache_here": BenchmarkHotpathSiteCacheHere,
		"restore_dirty":   BenchmarkHotpathRestoreDirty,
		"restore_full":    BenchmarkHotpathRestoreFull,
	}
	type microResult struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	out := struct {
		Date       string                 `json:"date"`
		Micro      map[string]microResult `json:"micro"`
		Throughput []map[string]float64   `json:"throughput_pclht"`
	}{
		Date:  time.Now().UTC().Format(time.RFC3339),
		Micro: make(map[string]microResult),
	}
	for name, fn := range micro {
		r := testing.Benchmark(fn)
		out.Micro[name] = microResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
		t.Logf("%-16s %10.1f ns/op %4d allocs/op", name, out.Micro[name].NsPerOp, r.AllocsPerOp())
	}
	for _, workers := range []int{1, 2, 4, 8} {
		eps, err := hotpathThroughput(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out.Throughput = append(out.Throughput, map[string]float64{
			"workers":       float64(workers),
			"execs_per_sec": eps,
		})
		t.Logf("workers=%d %.2f execs/s", workers, eps)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_hotpath.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_hotpath.json")
}
