package pmrace_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func TestTargetsRegistered(t *testing.T) {
	names := pmrace.Targets()
	want := map[string]bool{"pclht": true, "clevel": true, "cceh": true, "fastfair": true, "memcached": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registered targets = %v, want all five systems", names)
	}
}

func TestFuzzUnknownTarget(t *testing.T) {
	_, err := pmrace.NewCampaign(context.Background(), "no-such-system")
	if err == nil {
		t.Fatalf("unknown target must error")
	}
	// The failure is typed — callers (the pmraced control plane maps it to
	// an HTTP 400) match it with errors.Is — and names the alternatives.
	if !errors.Is(err, pmrace.ErrUnknownTarget) {
		t.Fatalf("err = %v, want errors.Is ErrUnknownTarget", err)
	}
	if !strings.Contains(err.Error(), "no-such-system") || !strings.Contains(err.Error(), "pclht") {
		t.Fatalf("error %q does not name the offender and the registered targets", err)
	}
}

func TestFuzzSmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	c, err := pmrace.NewCampaign(context.Background(), "clevel",
		pmrace.WithBudget(6, 30*time.Second),
		pmrace.WithSeed(3),
	)
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if res.Execs == 0 || res.BranchCov == 0 {
		t.Fatalf("result = %+v", res)
	}
	// clevel has no true concurrency bugs (paper Table 2).
	for _, b := range res.Bugs {
		if b.Kind == pmrace.KindInter || b.Kind == pmrace.KindSync {
			t.Errorf("clevel must have no inter/sync bugs, got %+v", b)
		}
	}
}

// TestPublicEnvAPI exercises the documented path for testing custom PM code:
// create a pool and environment, run instrumented accesses, inspect findings.
func TestPublicEnvAPI(t *testing.T) {
	env := pmrace.NewEnv(pmrace.NewPool(4096))
	t1 := env.Spawn()
	t2 := env.Spawn()
	t1.Store64(64, 42, taint.None, taint.None) // unflushed
	v, lab := t2.Load64(64)
	t2.Store64(512, v, lab, taint.None) // durable side effect
	if got := len(env.Detector().Inconsistencies()); got != 1 {
		t.Fatalf("inconsistencies = %d, want 1", got)
	}
	img := env.Pool().CrashImage()
	re := pmrace.PoolFromImage(img)
	if re.Load64(64) != 0 {
		t.Fatalf("unflushed store must not survive the crash image")
	}
}

func TestSeedAndOpReexports(t *testing.T) {
	s := &pmrace.Seed{Ops: []pmrace.Op{{Kind: workload.OpSet, Key: "k", Value: "v"}}, Threads: 2}
	if len(s.Split()) != 2 {
		t.Fatalf("seed split broken")
	}
}
