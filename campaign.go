package pmrace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/targets"
)

// ErrUnknownTarget is returned (wrapped, with the offending name and the
// registered alternatives) by NewCampaign when the target name is not in
// the registry. Match it with errors.Is.
var ErrUnknownTarget = errors.New("unknown target")

// CampaignState is the typed campaign lifecycle, shared verbatim with the
// REST API's `state` field (it aliases api.State, the wire enum): an
// in-process campaign and a pmraced-managed one spell their states
// identically.
type CampaignState = api.State

// The campaign lifecycle states. In-process campaigns start on NewCampaign,
// so they never report StatePending — that state exists for pmraced, where
// a submitted campaign may queue for worker-budget headroom.
const (
	StatePending   = api.StatePending
	StateRunning   = api.StateRunning
	StateDraining  = api.StateDraining
	StateDone      = api.StateDone
	StateCancelled = api.StateCancelled
	StateFailed    = api.StateFailed
)

// Observability surface, re-exported from internal/obs.
type (
	// Event is one typed campaign event (see the Kind* constants for the
	// taxonomy).
	Event = obs.Event
	// Stats is a point-in-time campaign statistics snapshot; the terminal
	// CampaignDone event carries the final one.
	Stats = obs.Stats
	// Sink consumes events synchronously and losslessly (JSONL trace
	// writer, progress renderer, in-memory collector).
	Sink = obs.Sink

	// The concrete event payload types.
	PhaseChange           = obs.PhaseChange
	ExecDone              = obs.ExecDone
	SeedAccepted          = obs.SeedAccepted
	InterleavingScheduled = obs.InterleavingScheduled
	InconsistencyFound    = obs.InconsistencyFound
	ValidationVerdict     = obs.ValidationVerdict
	BugConfirmed          = obs.BugConfirmed
	CampaignDone          = obs.CampaignDone
)

// Event kinds.
const (
	KindPhaseChange           = obs.KindPhaseChange
	KindExecDone              = obs.KindExecDone
	KindSeedAccepted          = obs.KindSeedAccepted
	KindInterleavingScheduled = obs.KindInterleavingScheduled
	KindInconsistencyFound    = obs.KindInconsistencyFound
	KindValidationVerdict     = obs.KindValidationVerdict
	KindBugConfirmed          = obs.KindBugConfirmed
	KindCampaignDone          = obs.KindCampaignDone
)

// NewCollector returns an in-memory sink recording every event, for tests
// and programmatic post-processing.
func NewCollector() *obs.Collector { return obs.NewCollector() }

// NewJSONLSink returns a sink writing one JSON object per event to w.
func NewJSONLSink(w io.Writer) Sink { return obs.NewJSONLSink(w) }

// Campaign is a running fuzzing session. It starts immediately on
// NewCampaign and runs until its budget is exhausted or its context is
// cancelled; while in flight it exposes a live event stream, statistics
// snapshots, and a typed lifecycle state.
type Campaign struct {
	fz       *fuzz.Fuzzer
	em       *obs.Emitter
	tr       *obs.Tracer
	ctx      context.Context
	events   <-chan obs.Event
	done     chan struct{}
	httpSrv  *obs.Server
	httpAddr string
	sampler  *obs.RuntimeSampler
	res      *Result
	err      error
}

// NewCampaign creates and starts a fuzzing campaign against a registered
// target. An unregistered target fails immediately with ErrUnknownTarget.
// Cancelling ctx stops every worker at its next inter-execution check —
// within one execution — after which Wait returns the partial Result
// accumulated so far.
//
//	ctx, cancel := context.WithCancel(context.Background())
//	defer cancel()
//	c, err := pmrace.NewCampaign(ctx, "pclht",
//		pmrace.WithWorkers(8),
//		pmrace.WithBudget(500, 2*time.Minute))
//	if err != nil { ... }
//	for ev := range c.Events() {
//		if bug, ok := ev.(*pmrace.BugConfirmed); ok {
//			fmt.Println("bug:", bug.Summary)
//		}
//	}
//	res, _ := c.Wait()
func NewCampaign(ctx context.Context, target string, options ...CampaignOption) (*Campaign, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !targets.Has(target) {
		return nil, fmt.Errorf("pmrace: %w %q (registered: %s)",
			ErrUnknownTarget, target, strings.Join(targets.Names(), ", "))
	}
	cfg := campaignConfig{eventBuf: 4096}
	for _, o := range options {
		o(&cfg)
	}
	fz, err := fuzz.New(target, cfg.opts)
	if err != nil {
		return nil, err
	}

	em := obs.NewEmitter(cfg.sinks...)
	if cfg.progress != nil {
		em.AddSink(obs.NewProgressSink(cfg.progress, cfg.progressInterval, fz.Snapshot))
	}
	events := em.Subscribe(cfg.eventBuf)
	fz.SetEmitter(em)

	c := &Campaign{fz: fz, em: em, ctx: ctx, events: events, done: make(chan struct{})}
	if cfg.traceSample > 0 {
		c.tr = obs.NewTracer(em.Registry(), cfg.traceSample)
		c.tr.SetMeta("local", target)
		if cfg.opts.ArtifactDir != "" {
			c.tr.SetAnomalyDir(filepath.Join(cfg.opts.ArtifactDir, "anomalies"))
		}
		fz.SetTracer(c.tr)
	}
	if cfg.httpAddr != "" {
		srv := obs.NewServer(em, func() any { return c.Snapshot() })
		srv.SetTracer(c.tr)
		bound, err := srv.Start(cfg.httpAddr)
		if err != nil {
			em.Close()
			return nil, err
		}
		c.httpSrv = srv
		c.httpAddr = bound
		// The introspection server implies someone is scraping /metrics:
		// feed it runtime self-telemetry at 1 Hz.
		c.sampler = obs.StartRuntimeSampler(em.Registry(), 0)
	}
	go func() {
		defer close(c.done)
		c.res, c.err = fz.RunContext(ctx)
		// Close after the terminal CampaignDone event: the Events()
		// channel drains and then closes, ending consumer range loops
		// and /events SSE streams; the HTTP server goes down after its
		// streams have drained.
		c.em.Close()
		c.sampler.Close()
		c.httpSrv.Close()
	}()
	return c, nil
}

// Spans returns the campaign's recorded span timeline (oldest first), or nil
// when tracing was not enabled (see WithTracing). The flight recorder is
// bounded: a long campaign retains its most recent spans.
func (c *Campaign) Spans() []obs.Span {
	if c.tr == nil {
		return nil
	}
	return c.tr.Spans()
}

// WriteTrace writes the campaign's span timeline to w as Chrome trace-event
// JSON, loadable in ui.perfetto.dev or chrome://tracing. It errors when
// tracing was not enabled.
func (c *Campaign) WriteTrace(w io.Writer) error {
	if c.tr == nil {
		return errors.New("pmrace: tracing not enabled (use WithTracing)")
	}
	return c.tr.WriteChrome(w)
}

// HTTPAddr returns the bound address of the campaign's introspection server
// (see WithHTTPAddr), or "" when none was requested.
func (c *Campaign) HTTPAddr() string { return c.httpAddr }

// State returns the campaign's lifecycle state. An in-process campaign is
// Running from NewCampaign on; it becomes Draining once its context is
// cancelled while workers finish their in-flight executions, and settles
// terminal as Done (budget exhausted), Cancelled (context cancelled) or
// Failed (Wait returns an error). The same enum — and the same strings —
// appear in the REST API's `state` field.
func (c *Campaign) State() CampaignState {
	select {
	case <-c.done:
		switch {
		case c.err != nil:
			return StateFailed
		case c.ctx.Err() != nil:
			return StateCancelled
		default:
			return StateDone
		}
	default:
	}
	if c.ctx.Err() != nil {
		return StateDraining
	}
	return StateRunning
}

// Events returns the campaign's event stream. The channel is buffered
// (WithEventBuffer); if the consumer falls behind, the oldest buffered
// event is shed — attach a Sink for lossless consumption. The channel is
// closed once the campaign is over and the terminal CampaignDone event has
// been delivered.
func (c *Campaign) Events() <-chan Event { return c.events }

// Snapshot returns live campaign statistics, stamped with the current
// lifecycle state; safe to call at any time from any goroutine. After the
// campaign finishes, it equals the final Result's aggregates.
func (c *Campaign) Snapshot() Stats {
	st := c.fz.Snapshot()
	st.State = string(c.State())
	return st
}

// Done returns a channel closed when the campaign has finished.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign finishes and returns its Result. On
// context cancellation the partial Result is returned without error —
// cancellation is a normal way to end a campaign, like exhausting the
// budget. Wait may be called multiple times and from multiple goroutines.
func (c *Campaign) Wait() (*Result, error) {
	<-c.done
	return c.res, c.err
}
