// The quickstart example shows the full PMRace workflow on a custom PM data
// structure: implement the Target interface against the instrumentation
// runtime, register it, fuzz it, and read the bug reports.
//
// The structure is a persistent counter with an append-only audit log. It
// contains a classic PM Inter-thread Inconsistency: Incr writes the new
// counter value with a regular store and appends a log record derived from
// it with a non-temporal (immediately durable) store — but the counter
// itself is flushed only afterwards. If another thread reads the unflushed
// counter and logs a record based on it, a crash in the window leaves a log
// entry acknowledging a count that PM never had.
//
// Run it:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// Pool layout.
const (
	offCounter = 0   // the persistent counter (own cache line)
	offLogLen  = 64  // number of log records
	offLog     = 128 // log records, 8 bytes each
)

// AuditCounter is the custom PM structure under test.
type AuditCounter struct{}

// Name implements pmrace.Target.
func (c *AuditCounter) Name() string { return "audit-counter" }

// PoolSize implements pmrace.Target.
func (c *AuditCounter) PoolSize() uint64 { return 64 << 10 }

// Annotations implements pmrace.Target.
func (c *AuditCounter) Annotations() int { return 0 }

// Setup implements pmrace.Target.
func (c *AuditCounter) Setup(t *rt.Thread) error {
	t.NTStore64(offCounter, 0, taint.None, taint.None)
	t.NTStore64(offLogLen, 0, taint.None, taint.None)
	t.Fence()
	return nil
}

// Exec implements pmrace.Target: every mutating operation increments the
// counter and audit-logs the value it observed.
func (c *AuditCounter) Exec(t *rt.Thread, op workload.Op) error {
	if !op.Kind.Mutates() {
		// Reads just observe the counter.
		t.Load64(offCounter)
		return nil
	}
	// Read the counter — possibly another thread's unflushed increment:
	// the taint label carries that dependency forward.
	v, lab := t.Load64(offCounter)
	// Store the incremented value; the flush comes only after the log
	// append (the bug window another thread's read lands in).
	t.Store64(offCounter, v+1, lab, taint.None)

	// Durable side effect based on the (possibly non-persisted) counter:
	// append an audit record with a non-temporal store.
	n, nlab := t.Load64(offLogLen)
	if offLog+(n+1)*8 > c.PoolSize() {
		return nil // log full
	}
	t.NTStore64(offLog+n*8, v+1, lab, nlab)
	t.NTStore64(offLogLen, n+1, nlab, taint.None)

	// Only now is the counter itself persisted.
	t.Persist(offCounter, 8)
	return nil
}

// Recover implements pmrace.Target: nothing repairs the audit log, so the
// inconsistency survives validation and is reported as a bug.
func (c *AuditCounter) Recover(t *rt.Thread) error {
	t.Load64(offCounter)
	t.Load64(offLogLen)
	return nil
}

func main() {
	pmrace.RegisterTarget("audit-counter", func() pmrace.Target { return &AuditCounter{} })

	c, err := pmrace.NewCampaign(context.Background(), "audit-counter",
		pmrace.WithBudget(60, 0),
		pmrace.WithThreads(4),
		pmrace.WithKeySpace(4), // hot keys: every op hits the same counter anyway
		pmrace.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The campaign streams typed events while it runs; report each bug the
	// moment post-failure validation confirms it.
	for ev := range c.Events() {
		if bug, ok := ev.(*pmrace.BugConfirmed); ok {
			fmt.Printf("confirmed while fuzzing: [%s] %s\n", bug.Class, bug.Summary)
		}
	}
	res, err := c.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d executions, coverage: %d branch / %d alias bits\n",
		res.Execs, res.BranchCov, res.AliasCov)
	fmt.Printf("candidates: %d inter-thread, %d intra-thread\n",
		res.Counts.InterCandidates, res.Counts.IntraCandidates)

	if len(res.Bugs) == 0 {
		log.Fatal("expected PMRace to find the audit-log inconsistency")
	}
	fmt.Printf("\nPMRace found %d unique bug(s):\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  [%s] grouped at %s\n      %s\n", b.Kind, site.Lookup(b.GroupSite), b.Summary)
	}

	fmt.Println("\nfirst detailed report:")
	for _, j := range res.DB.Inconsistencies() {
		if j.Status == pmrace.StatusBug {
			fmt.Println(pmrace.FormatInconsistency(j))
			break
		}
	}
}
