// The pclht-dataloss example replays the paper's motivating bug (P-CLHT,
// §2.3.2, Figures 2 and 3) as a deterministic two-thread walkthrough instead
// of a fuzzing campaign, so the whole failure can be read end to end:
//
//  1. thread-1 fills the table until a resize swaps the global table pointer
//     (ht_off) — the swap is stored but not yet flushed;
//  2. thread-2 reads the unflushed pointer and inserts a key-value item into
//     the new table with non-temporal (immediately durable) stores;
//  3. the machine crashes before thread-1's flush: the table pointer reverts
//     to the old table, and thread-2's item — although it reached PM — is
//     unreachable. Data loss.
//
// The example drives the real P-CLHT implementation and the real detector:
// the inconsistency PMRace reports in step 2 is precisely the one whose
// crash image demonstrates the loss in step 3.
//
// Run it:
//
//	go run ./examples/pclht-dataloss
package main

import (
	"fmt"
	"log"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets/pclht"
)

func main() {
	ht := pclht.New()
	var detected []*core.Inconsistency
	var crashImg []byte
	env := rt.NewEnv(pmem.New(ht.PoolSize()), rt.Config{
		OnInconsistency: func(e *rt.Env, in *core.Inconsistency) {
			detected = append(detected, in)
			// Duplicate the pool at the adversarial crash point: the
			// durable side effect persisted, the dependency not.
			if crashImg == nil && in.Kind == core.KindInter {
				crashImg = e.Pool().CrashImageWith([]pmem.Range{in.SideEffect})
			}
		},
	})

	setup := env.Spawn()
	if err := ht.Setup(setup); err != nil {
		log.Fatal(err)
	}
	setup.Exit()

	// Phase 1: fill the table to the brink of a resize.
	fmt.Println("phase 1: thread-1 loads the table towards a resize")
	t1 := env.Spawn()
	var keys []string
	for i := 0; i < 23; i++ {
		k := fmt.Sprintf("key%03d", i)
		keys = append(keys, k)
		if err := ht.Put(t1, k, "stable"); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 2: force the buggy interleaving with the PM-aware machinery:
	// thread-2 waits at the table-pointer load; thread-1's resize signals
	// after the unflushed pointer swap and stalls before the flush.
	fmt.Println("phase 2: resize vs. concurrent insert (the Figure 2 interleaving)")
	stats := statsRun(ht)
	entry := entryForHtOff(stats)
	if entry == nil {
		log.Fatal("no priority-queue entry for the table pointer")
	}
	// Re-run on a fresh environment under the PM-aware strategy.
	ht2 := pclht.New()
	detected = detected[:0]
	crashImg = nil
	env2 := rt.NewEnv(pmem.New(ht2.PoolSize()), rt.Config{
		OnInconsistency: func(e *rt.Env, in *core.Inconsistency) {
			detected = append(detected, in)
			if crashImg == nil && in.Kind == core.KindInter {
				crashImg = e.Pool().CrashImageWith([]pmem.Range{in.SideEffect})
			}
		},
		Strategy: sched.NewPMAware(sched.DefaultConfig(), entry, 0),
	})
	boot := env2.Spawn()
	if err := ht2.Setup(boot); err != nil {
		log.Fatal(err)
	}
	boot.Exit()
	env2.BeginExec(2)
	done := make(chan struct{})
	go func() { // thread-1: fills and eventually resizes
		th := env2.Spawn()
		defer th.Exit()
		for i := 0; i < 30; i++ {
			ht2.Put(th, fmt.Sprintf("key%03d", i), "stable")
		}
		close(done)
	}()
	go func() { // thread-2: inserts the item that will be lost
		th := env2.Spawn()
		defer th.Exit()
		for i := 0; i < 40; i++ {
			ht2.Put(th, "victim", "precious")
		}
	}()
	<-done
	env2.EndExec()

	inter := 0
	for _, in := range detected {
		if in.Kind == core.KindInter {
			inter++
		}
	}
	fmt.Printf("  detector: %d inconsistencies, %d inter-thread\n", len(detected), inter)
	for _, in := range detected {
		if in.Kind == core.KindInter {
			fmt.Printf("  PMRace report: insert through unflushed table pointer\n")
			fmt.Printf("    pointer stored at %s, read at %s, item written at %s (%s flow)\n",
				site.Lookup(site.ID(in.Event.WriteSite)), site.Lookup(site.ID(in.Event.ReadSite)),
				site.Lookup(in.StoreSite), in.Flow)
			break
		}
	}
	if crashImg == nil {
		fmt.Println("  (interleaving not hit this run — try again; the fuzzer retries automatically)")
		return
	}

	// Phase 3: crash at the detected point and recover.
	fmt.Println("phase 3: crash and recovery")
	ht3 := pclht.New()
	env3 := rt.NewEnv(pmem.FromImage(crashImg), rt.Config{})
	th3 := env3.Spawn()
	if err := ht3.Recover(th3); err != nil {
		log.Fatal(err)
	}
	if _, ok := ht3.Get(th3, "victim"); ok {
		fmt.Println("  victim item survived (crash landed after the flush)")
	} else {
		fmt.Println("  DATA LOSS: the durably-written 'victim' item is unreachable —")
		fmt.Println("  the crash reverted the unflushed table pointer (paper Figure 3)")
	}
}

// statsRun executes a filler workload once to collect the access statistics
// the priority queue is built from.
func statsRun(ht *pclht.HT) map[pmem.Addr]*sched.AddrStats {
	env := rt.NewEnv(pmem.New(ht.PoolSize()), rt.Config{CollectStats: true})
	th := env.Spawn()
	if err := ht.Setup(th); err != nil {
		log.Fatal(err)
	}
	th.Exit()
	a, b := env.Spawn(), env.Spawn()
	for i := 0; i < 30; i++ {
		ht.Put(a, fmt.Sprintf("key%03d", i), "v")
		ht.Put(b, "victim", "precious")
	}
	a.Exit()
	b.Exit()
	return env.Stats()
}

// entryForHtOff picks the hottest shared-address entry — the global table
// pointer, which every operation loads and the resize stores.
func entryForHtOff(stats map[pmem.Addr]*sched.AddrStats) *sched.Entry {
	q := sched.BuildQueue(stats)
	return q.Pop()
}
