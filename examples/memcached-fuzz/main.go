// The memcached-fuzz example runs a complete PM-aware fuzzing session
// against the memcached-pmem reproduction and walks through the result the
// way the paper's evaluation tables do: candidates → confirmed
// inconsistencies → post-failure verdicts (validated false positives from
// the index rebuild, whitelisted checksum reads) → surviving unique bugs.
//
// Run it:
//
//	go run ./examples/memcached-fuzz
package main

import (
	"fmt"
	"log"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/site"
)

func main() {
	res, err := pmrace.Fuzz("memcached", pmrace.Options{
		MaxExecs: 150,
		Duration: 2 * time.Minute,
		Workers:  2,
		Seed:     5,
		// memcached-pmem protects value reads with checksums; the
		// whitelist marks that crash-consistent pattern benign (§4.4).
		ExtraWhitelist: []string{"memcached.(*KV).checksum"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fuzzed memcached-pmem: %d executions, %d seeds, %.1f exec/s\n",
		res.Execs, res.Seeds, res.ExecsPerSec)
	fmt.Printf("coverage: %d branch bits, %d PM alias pair bits\n\n", res.BranchCov, res.AliasCov)

	c := res.Counts
	fmt.Println("detection funnel (the paper's Table 3 row):")
	fmt.Printf("  %4d PM inter-thread inconsistency candidates\n", c.InterCandidates)
	fmt.Printf("  %4d confirmed inter-thread inconsistencies\n", c.Inter)
	fmt.Printf("  %4d validated false positives (index rebuild overwrote the side effect)\n", c.InterValidated)
	fmt.Printf("  %4d whitelisted false positives (checksummed reads)\n", c.InterWhitelist)
	fmt.Printf("  %4d unique inter-thread bugs survive\n\n", c.InterBugs)

	fmt.Printf("unique bugs (%d):\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  [%s] %s — %s\n", b.Kind, site.Lookup(b.GroupSite), b.Summary)
	}

	fmt.Println("\nverdict detail per inconsistency:")
	for _, j := range res.DB.Inconsistencies() {
		fmt.Printf("  %-6s %-14s dirty write %-18s side effect %s\n",
			j.Kind, j.Status,
			site.Lookup(site.ID(j.Event.WriteSite)).String(),
			site.Lookup(j.StoreSite))
	}
}
