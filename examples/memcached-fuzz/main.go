// The memcached-fuzz example runs a complete PM-aware fuzzing session
// against the memcached-pmem reproduction and walks through the result the
// way the paper's evaluation tables do: candidates → confirmed
// inconsistencies → post-failure verdicts (validated false positives from
// the index rebuild, whitelisted checksum reads) → surviving unique bugs.
//
// Run it:
//
//	go run ./examples/memcached-fuzz
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/site"
)

func main() {
	// A Collector sink records the full lossless event trace; the live
	// Events() channel is used for in-flight reporting below.
	trace := pmrace.NewCollector()
	c, err := pmrace.NewCampaign(context.Background(), "memcached",
		pmrace.WithBudget(150, 2*time.Minute),
		pmrace.WithWorkers(2),
		pmrace.WithSeed(5),
		// memcached-pmem protects value reads with checksums; the
		// whitelist marks that crash-consistent pattern benign (§4.4).
		pmrace.WithWhitelist("memcached.(*KV).checksum"),
		pmrace.WithSink(trace),
	)
	if err != nil {
		log.Fatal(err)
	}
	for ev := range c.Events() {
		if v, ok := ev.(*pmrace.ValidationVerdict); ok {
			fmt.Printf("post-failure validation: %-5s inconsistency -> %s\n", v.Class, v.Status)
		}
	}
	res, err := c.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevent trace: %d events recorded by the collector\n", len(trace.Events()))

	fmt.Printf("fuzzed memcached-pmem: %d executions, %d seeds, %.1f exec/s\n",
		res.Execs, res.Seeds, res.ExecsPerSec)
	fmt.Printf("coverage: %d branch bits, %d PM alias pair bits\n\n", res.BranchCov, res.AliasCov)

	counts := res.Counts
	fmt.Println("detection funnel (the paper's Table 3 row):")
	fmt.Printf("  %4d PM inter-thread inconsistency candidates\n", counts.InterCandidates)
	fmt.Printf("  %4d confirmed inter-thread inconsistencies\n", counts.Inter)
	fmt.Printf("  %4d validated false positives (index rebuild overwrote the side effect)\n", counts.InterValidated)
	fmt.Printf("  %4d whitelisted false positives (checksummed reads)\n", counts.InterWhitelist)
	fmt.Printf("  %4d unique inter-thread bugs survive\n\n", counts.InterBugs)

	fmt.Printf("unique bugs (%d):\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  [%s] %s — %s\n", b.Kind, site.Lookup(b.GroupSite), b.Summary)
	}

	fmt.Println("\nverdict detail per inconsistency:")
	for _, j := range res.DB.Inconsistencies() {
		fmt.Printf("  %-6s %-14s dirty write %-18s side effect %s\n",
			j.Kind, j.Status,
			site.Lookup(site.ID(j.Event.WriteSite)).String(),
			site.Lookup(j.StoreSite))
	}
}
