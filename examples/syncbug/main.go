// The syncbug example demonstrates PM Synchronization Inconsistency
// (Definition 3) and the post-failure validation that separates the true bug
// from the benign cases, using the CCEH reproduction:
//
//   - CCEH persists its segment locks in PM and its recovery forgets to
//     release them (paper Table 2, Bug 6): after a crash while a lock was
//     held, every post-recovery writer to that segment hangs.
//   - The directory lock is also persisted but recovery re-initializes it —
//     the same detection validates as a false positive.
//
// Run it:
//
//	go run ./examples/syncbug
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/targets/cceh"
	"github.com/pmrace-go/pmrace/internal/validate"
)

func main() {
	ht := cceh.New()
	var syncs []struct {
		si  *core.SyncInconsistency
		img []byte
	}
	env := rt.NewEnv(pmem.New(ht.PoolSize()), rt.Config{
		OnSync: func(e *rt.Env, si *core.SyncInconsistency) {
			// Duplicate the pool with the lock update force-persisted:
			// the adversarial crash point for this inconsistency.
			img := e.Pool().CrashImageWith([]pmem.Range{{Off: si.Addr, Len: 8}})
			syncs = append(syncs, struct {
				si  *core.SyncInconsistency
				img []byte
			}{si, img})
		},
	})
	th := env.Spawn()
	if err := ht.Setup(th); err != nil {
		log.Fatal(err)
	}

	// A small workload updates segment locks (every Put) and the
	// directory lock (splits).
	fmt.Println("running workload: every lock update on an annotated PM")
	fmt.Println("synchronization variable is a PM Synchronization Inconsistency")
	for i := 0; i < 120; i++ {
		if err := ht.Put(th, fmt.Sprintf("key%04d", i), "v"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("detected %d synchronization inconsistencies\n\n", len(syncs))

	// Post-failure validation: restart on each crash image and check the
	// annotated variable against its expected initial value.
	factory := func() targets.Target { return cceh.New() }
	verdicts := map[string]core.Status{}
	for _, s := range syncs {
		r := validate.Sync(factory, pmem.AdversarialState(s.img), s.si, validate.Options{HangTimeout: 50 * time.Millisecond})
		name := s.si.Var.Name
		if cur, ok := verdicts[name]; !ok || r.Status == core.StatusBug && cur != core.StatusBug {
			verdicts[name] = r.Status
		}
		fmt.Printf("  %-13s updated at %-14s -> %s\n", s.si.Var.Name, site.Lookup(s.si.Site), r.Status)
	}

	fmt.Println("\nverdict per variable type:")
	for name, st := range verdicts {
		switch st {
		case core.StatusBug:
			fmt.Printf("  %-13s BUG — recovery never re-initializes it (paper Bug 6)\n", name)
		default:
			fmt.Printf("  %-13s benign — recovery re-initializes it (validated FP)\n", name)
		}
	}

	// Demonstrate the consequence: recover from an image with a held
	// segment lock and watch the writer hang.
	fmt.Println("\nconsequence: post-recovery hang on the never-released segment lock")
	var bugImg []byte
	for _, s := range syncs {
		if s.si.Var.Name == "segment-lock" && s.si.NewVal != 0 {
			bugImg = s.img
			break
		}
	}
	if bugImg == nil {
		log.Fatal("no segment-lock image captured")
	}
	ht2 := cceh.New()
	hung := false
	env2 := rt.NewEnv(pmem.FromImage(bugImg), rt.Config{
		HangTimeout: 50 * time.Millisecond,
		OnHang:      func(*rt.Env, rt.HangReport) { hung = true },
	})
	th2 := env2.Spawn()
	if err := ht2.Recover(th2); err != nil {
		log.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(rt.HangError); !ok {
					panic(r)
				}
			}
		}()
		for i := 0; i < 200; i++ {
			ht2.Put(th2, fmt.Sprintf("key%04d", i), "after-crash")
		}
	}()
	if hung {
		fmt.Println("  a writer hung acquiring the restored lock — the PM Execution Context Bug manifests")
	} else {
		fmt.Println("  (the workload avoided the locked segment this run)")
	}
}
