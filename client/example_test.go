package client_test

import (
	"context"
	"fmt"
	"time"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/client"
)

// Example shows the remote campaign workflow end to end: submit a spec to
// a pmraced server, block until the campaign is terminal, and read the bug
// inventory. It has no Output comment because it needs a live server
// (start one with `pmraced -addr :7762`); godoc still renders and compiles
// it.
func Example() {
	cl := client.New("http://127.0.0.1:7762")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Submit returns as soon as the campaign is accepted; it may queue
	// behind others for the shared worker budget.
	c, err := cl.Submit(ctx, api.CampaignSpec{
		Target:   "pmwal",
		Protocol: true, // fuzz through memcached text-protocol byte streams
		Workers:  2,
		MaxExecs: 600,
	})
	if err != nil {
		fmt.Println("submit:", err)
		return
	}

	// Wait polls until the campaign reaches a terminal state (0 = default
	// poll interval) and returns the final document.
	final, err := cl.Wait(ctx, c.ID, 0)
	if err != nil {
		fmt.Println("wait:", err)
		return
	}
	fmt.Println(final.State, "after", final.Stats.Execs, "executions")
	for _, b := range final.Bugs {
		if b.Duplicate {
			continue // already reported by an earlier campaign on this target
		}
		fmt.Printf("[%s] %s — %s\n", b.Kind, b.Site, b.Summary)
	}
}
