// Package client is the Go client for the pmraced control plane. It speaks
// the versioned REST contract defined in package api — the same typed
// documents the server marshals — over plain net/http, including the
// Server-Sent Events stream, which it decodes back into the typed events of
// the in-process API (pmrace.Event).
//
//	cl := client.New("http://127.0.0.1:7762")
//	c, err := cl.Submit(ctx, api.CampaignSpec{Target: "pclht", MaxExecs: 200})
//	...
//	final, err := cl.Wait(ctx, c.ID, 0)
//	for _, bug := range final.Bugs { ... }
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/internal/obs"
)

// Client talks to one pmraced server.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles). The default client has no timeout — the SSE
// stream is long-lived; bound individual calls with their context.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New creates a client for the server at baseURL (scheme://host:port; any
// path is stripped — the client appends the versioned API paths itself).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do performs one API call: JSON request body (when in != nil), JSON
// response into out (when out != nil), api.Error on any non-2xx status.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError rebuilds the api.Error envelope from a non-2xx response.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	ae := &api.Error{StatusCode: resp.StatusCode}
	if err := json.Unmarshal(raw, ae); err != nil || ae.Code == "" {
		ae.Code = api.CodeInternal
		ae.Message = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return ae
}

// Info fetches the server document.
func (c *Client) Info(ctx context.Context) (*api.ServerInfo, error) {
	var out api.ServerInfo
	if err := c.do(ctx, http.MethodGet, api.BasePath, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit submits a campaign and returns its initial document.
func (c *Client) Submit(ctx context.Context, spec api.CampaignSpec) (*api.Campaign, error) {
	var out api.Campaign
	if err := c.do(ctx, http.MethodPost, api.BasePath+"/campaigns", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// List fetches every campaign the server tracks, in submission order.
func (c *Client) List(ctx context.Context) ([]api.Campaign, error) {
	var out []api.Campaign
	if err := c.do(ctx, http.MethodGet, api.BasePath+"/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Get fetches one campaign.
func (c *Client) Get(ctx context.Context, id string) (*api.Campaign, error) {
	var out api.Campaign
	if err := c.do(ctx, http.MethodGet, api.BasePath+"/campaigns/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cancel cancels a campaign: a pending one settles Cancelled immediately, a
// running one drains and keeps its partial results.
func (c *Client) Cancel(ctx context.Context, id string) (*api.Campaign, error) {
	var out api.Campaign
	if err := c.do(ctx, http.MethodDelete, api.BasePath+"/campaigns/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls until the campaign reaches a terminal state and returns its
// final document. poll <= 0 selects 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*api.Campaign, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		doc, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if doc.State.Terminal() {
			return doc, nil
		}
		select {
		case <-ctx.Done():
			return doc, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Artifacts lists a campaign's forensic bundles.
func (c *Client) Artifacts(ctx context.Context, id string) ([]api.ArtifactInfo, error) {
	var out []api.ArtifactInfo
	if err := c.do(ctx, http.MethodGet,
		api.BasePath+"/campaigns/"+url.PathEscape(id)+"/artifacts", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Artifact fetches one bundle.
func (c *Client) Artifact(ctx context.Context, id, name string) (*api.ArtifactBundle, error) {
	var out api.ArtifactBundle
	if err := c.do(ctx, http.MethodGet,
		api.BasePath+"/campaigns/"+url.PathEscape(id)+"/artifacts/"+url.PathEscape(name),
		nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Trace fetches a campaign's span timeline as raw Chrome trace-event JSON —
// the document is written to disk or piped into a viewer (ui.perfetto.dev)
// verbatim, so the client does not decode it. Campaigns running with tracing
// disabled yield a not_found api.Error.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+api.BasePath+"/campaigns/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Events subscribes to a campaign's SSE stream and decodes it back into
// typed events — the same stream Campaign.Events delivers in-process. The
// channel closes when the campaign ends (the server closes the stream after
// the terminal CampaignDone event) or when ctx is cancelled; a transport or
// decode failure closes it too and is reported by the returned error
// function afterwards.
func (c *Client) Events(ctx context.Context, id string) (<-chan api.Event, func() error, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+api.BasePath+"/campaigns/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, nil, decodeError(resp)
	}

	ch := make(chan api.Event, 256)
	var streamErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		defer resp.Body.Close()
		streamErr = decodeSSE(ctx, resp.Body, ch)
	}()
	errFn := func() error {
		<-done
		if streamErr != nil && ctx.Err() != nil {
			// Cancellation tears the transport down; that is a normal end.
			return nil
		}
		return streamErr
	}
	return ch, errFn, nil
}

// decodeSSE parses the SSE framing (event:/id:/data: records separated by
// blank lines) and decodes each data payload — the JSONL envelope — into
// its typed event.
func decodeSSE(ctx context.Context, r io.Reader, ch chan<- api.Event) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue
			}
			var env struct {
				Kind obs.Kind        `json:"kind"`
				Data json.RawMessage `json:"data"`
			}
			if err := json.Unmarshal(data, &env); err != nil {
				return fmt.Errorf("client: decoding SSE envelope: %w", err)
			}
			ev, err := obs.DecodeEvent(env.Kind, env.Data)
			if err != nil {
				return err
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return ctx.Err()
			}
			data = data[:0]
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// event:/id:/retry: and comments carry no payload we need —
			// the envelope repeats kind and sequence.
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
