// Tests for campaign live introspection: the HTTP endpoints answer while
// the campaign runs, and the SSE /events stream carries the same event
// sequence the in-process sinks see.
package pmrace_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/obs"
)

// TestCampaignHTTPIntrospection starts a campaign with WithHTTPAddr and a
// lossless collector sink, consumes the SSE /events stream to its end, and
// asserts the stream is a contiguous suffix of the collector's sequence —
// matched per event by the envelope's emitter sequence number — ending with
// campaign_done. (A suffix, not the whole sequence: the campaign may emit a
// few events before the HTTP client connects.)
func TestCampaignHTTPIntrospection(t *testing.T) {
	col := pmrace.NewCollector()
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithBudget(150, time.Minute),
		pmrace.WithWorkers(1),
		pmrace.WithThreads(1),
		pmrace.WithMode(pmrace.ModeNone),
		pmrace.WithSeed(7),
		pmrace.WithSink(col),
		pmrace.WithHTTPAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr := c.HTTPAddr()
	if addr == "" {
		t.Fatal("HTTPAddr empty with WithHTTPAddr set")
	}
	// Drain the in-process channel so the campaign is never back-pressured.
	go func() {
		for range c.Events() {
		}
	}()

	// Connect the SSE stream first and read it concurrently: the server
	// shuts down once the campaign finishes and its streams drain, so
	// every endpoint must be hit while the campaign is still running —
	// executions are fast enough that a sequential stream-then-poll
	// order would lose the race.
	base := "http://" + addr
	type frame struct {
		Kind string          `json:"kind"`
		Seq  uint64          `json:"seq"`
		Data json.RawMessage `json:"data"`
	}
	framesCh := make(chan []frame, 1)
	streamErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/events")
		if err != nil {
			streamErr <- err
			return
		}
		defer resp.Body.Close()
		var frames []frame
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f frame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				streamErr <- err
				return
			}
			frames = append(frames, f)
		}
		if err := sc.Err(); err != nil {
			streamErr <- err
			return
		}
		framesCh <- frames
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}

	resp, err = http.Get(base + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	var st pmrace.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/status decode: %v", err)
	}
	if st.Target != "pclht" {
		t.Fatalf("/status target = %q", st.Target)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "# TYPE pmrace_fuzz_execs_total counter") {
		t.Fatalf("/metrics missing exec counter:\n%s", metrics)
	}

	// The campaign closing its emitter ends the SSE stream; join the
	// concurrent reader.
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	var frames []frame
	select {
	case frames = <-framesCh:
	case err := <-streamErr:
		t.Fatalf("/events stream: %v", err)
	}

	if len(frames) == 0 {
		t.Fatal("SSE stream delivered no events")
	}
	if frames[len(frames)-1].Kind != string(pmrace.KindCampaignDone) {
		t.Fatalf("last SSE event = %q, want campaign_done", frames[len(frames)-1].Kind)
	}

	// Index the lossless collector sequence by emitter seq, then check the
	// streamed frames are exactly the collector events from the first
	// streamed seq onward.
	evs := col.Events()
	bySeq := make(map[uint64]pmrace.Event, len(evs))
	for _, ev := range evs {
		bySeq[ev.Meta().Seq] = ev
	}
	first := frames[0].Seq
	want := 0
	for _, ev := range evs {
		if ev.Meta().Seq >= first {
			want++
		}
	}
	if len(frames) != want {
		t.Fatalf("SSE delivered %d events from seq %d, collector has %d", len(frames), first, want)
	}
	prev := uint64(0)
	for i, f := range frames {
		if f.Seq <= prev {
			t.Fatalf("frame %d: seq %d not increasing after %d", i, f.Seq, prev)
		}
		prev = f.Seq
		ev, ok := bySeq[f.Seq]
		if !ok {
			t.Fatalf("frame %d: seq %d unknown to the collector", i, f.Seq)
		}
		got, err := obs.DecodeEvent(obs.Kind(f.Kind), f.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if gf, wf := obs.Fingerprint(got), obs.Fingerprint(ev); gf != wf {
			t.Fatalf("frame %d (seq %d): streamed %q, collector %q", i, f.Seq, gf, wf)
		}
	}
}
